// Package obsflag wires the observability layer (internal/obs) into a CLI:
// it registers the shared -metrics / -trace / -series / -slo / -pprof /
// -http flags, builds the root registry, trace sink, time-series collector,
// streaming SLO engine, and live introspection server they request,
// installs sim.ObsProvider so every simulator constructed anywhere in the
// process is instrumented, and writes all outputs on Close. Both
// cmd/experiments and cmd/campaign use it, so the flags behave identically
// across drivers.
package obsflag

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/expose"
	"repro/internal/obs/flight"
	"repro/internal/obs/slo"
	"repro/internal/sim"
)

// Flags holds the observability options shared by the experiment drivers.
type Flags struct {
	// Metrics is where the end-of-run metrics snapshot goes: "" disables,
	// "-" writes text to stderr, a *.json path writes the JSON encoding,
	// anything else writes the aligned text table.
	Metrics string
	// Trace is the JSONL event-trace output path ("" disables). The line
	// schema is documented in docs/OBSERVABILITY.md.
	Trace string
	// Series is "PATH" or "PATH,WINDOW": write a time-windowed metrics
	// series (obs.Series) to PATH on exit, bucketed by WINDOW of simulated
	// time (a Go duration, default 1s). "-" writes text to stderr, *.json
	// writes one JSON document, *.jsonl writes a header line plus one line
	// per window, anything else text.
	Series string
	// Pprof is a directory for cpu.pprof and heap.pprof ("" disables).
	Pprof string
	// HTTP is a listen address (e.g. "127.0.0.1:6060" or ":0") for the live
	// introspection server (internal/obs/expose): /metrics, /statusz,
	// /healthz, /debug/pprof/. "" disables.
	HTTP string
	// Flight is "DIR" or "DIR,N": arm a flight recorder (internal/obs/
	// flight) holding the last N lifecycle events (default
	// flight.DefaultCapacity) and dump it into DIR on panic, per-job
	// timeout, or lease expiry. "" disables — and disabled costs zero
	// allocations on the hot path.
	Flight string
	// Slo is an slo-v1 ruleset path (JSON or the YAML subset): arm the
	// streaming SLO engine (internal/obs/slo) evaluating the rules on
	// every captured series window, served at /alerts and as slo_*
	// families on /metrics when -http is set. Without -series a
	// default-window collector is installed to drive evaluation (its
	// points are not dumped). "" disables.
	Slo string
}

// Register installs -metrics, -trace, -series, -slo, -pprof, -http, and
// -flight on fs (typically flag.CommandLine) and returns the struct their
// values land in.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", `write the metrics snapshot on exit ("-" = stderr as text, *.json = JSON, else text file)`)
	fs.StringVar(&f.Trace, "trace", "", "write a JSONL event trace to this file (schema: docs/OBSERVABILITY.md)")
	fs.StringVar(&f.Series, "series", "", `write a time-windowed metrics series on exit: PATH[,WINDOW] (WINDOW = Go duration of simulated time, default 1s; "-" = stderr, *.json = JSON, *.jsonl = JSONL, else text)`)
	fs.StringVar(&f.Slo, "slo", "", "evaluate the slo-v1 alert rules in this file (JSON or YAML) on every series window; live state at /alerts and slo_* on /metrics with -http")
	fs.StringVar(&f.Pprof, "pprof", "", "write cpu.pprof and heap.pprof to this directory")
	fs.StringVar(&f.HTTP, "http", "", `serve live introspection (/metrics, /statusz, /healthz, /debug/pprof/) on this address (e.g. "127.0.0.1:6060"; ":0" picks a free port)`)
	fs.StringVar(&f.Flight, "flight", "", `arm the flight recorder: DIR[,N] keeps the last N lifecycle events (default 256) and dumps them to DIR as JSONL on panic, job timeout, or lease expiry`)
	return f
}

// Enabled reports whether any simulator instrumentation was requested.
// Profiling alone does not need a registry; a live HTTP endpoint does.
func (f *Flags) Enabled() bool {
	return f.Metrics != "" || f.Trace != "" || f.Series != "" || f.Slo != "" || f.HTTP != ""
}

// parseFlightSpec splits a -flight value into its dump directory and ring
// capacity. The capacity is the suffix after the last comma when that
// suffix parses as a positive integer; otherwise the whole spec is the
// directory and the capacity defaults to flight.DefaultCapacity.
func parseFlightSpec(spec string) (dir string, capacity int, err error) {
	capacity = flight.DefaultCapacity
	i := strings.LastIndexByte(spec, ',')
	if i < 0 {
		return spec, capacity, nil
	}
	n, nerr := strconv.Atoi(spec[i+1:])
	if nerr != nil {
		return "", 0, fmt.Errorf("flight: bad capacity %q: %w", spec[i+1:], nerr)
	}
	if n <= 0 {
		return "", 0, fmt.Errorf("flight: non-positive capacity %q", spec[i+1:])
	}
	return spec[:i], n, nil
}

// parseSeriesSpec splits a -series value into its output path and window.
// The window is the suffix after the last comma when that suffix parses as a
// positive Go duration; otherwise the whole spec is the path and the window
// defaults to one simulated second.
func parseSeriesSpec(spec string) (path string, windowUS int64, err error) {
	windowUS = obs.DefaultSeriesWindowUS
	i := strings.LastIndexByte(spec, ',')
	if i < 0 {
		return spec, windowUS, nil
	}
	d, derr := time.ParseDuration(spec[i+1:])
	if derr != nil {
		return "", 0, fmt.Errorf("series: bad window %q: %w", spec[i+1:], derr)
	}
	if d <= 0 {
		return "", 0, fmt.Errorf("series: non-positive window %q", spec[i+1:])
	}
	return spec[:i], d.Microseconds(), nil
}

// Session is the live observability state of one CLI run. Callers must
// Close it before exiting — including error paths — or trace lines and
// profiles are lost; the usual shape is a run() function with
// `defer sess.Close()` whose return code main passes to os.Exit.
type Session struct {
	// Reg is the root registry (nil when no instrumentation was requested;
	// the obs API is nil-safe, so callers may use it unconditionally).
	Reg *obs.Registry
	// Stderr receives the "-" renderings and the trace-loss report at
	// Close; nil selects os.Stderr. Tests inject a buffer here.
	Stderr     io.Writer
	flags      *Flags
	series     *obs.Series
	seriesPath string
	slo        *slo.Engine
	sloSeries  *obs.Series // engine-owned series when -slo is set without -series
	http       *expose.Server
	flight     *flight.Recorder
	flightDir  string
	cpuFile    *os.File
	closeMu    sync.Mutex
	closed     bool
}

// Setup builds what the flags ask for: a registry (with a trace sink when
// -trace is set and a series collector when -series is set) published
// through sim.ObsProvider with per-simulation "s<seed>" run labels, and a
// started CPU profile when -pprof is set. With no flags set it returns an
// inert session whose Close is a no-op.
func (f *Flags) Setup() (*Session, error) {
	s := &Session{flags: f}
	if f.Enabled() {
		reg := obs.NewRegistry()
		if f.Trace != "" {
			if err := ensureDir(f.Trace); err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			file, err := os.Create(f.Trace)
			if err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
			reg.SetSink(obs.NewSink(file))
		}
		if f.Series != "" {
			path, windowUS, err := parseSeriesSpec(f.Series)
			if err != nil {
				return nil, err
			}
			if path != "-" {
				if err := ensureDir(path); err != nil {
					return nil, fmt.Errorf("series: %w", err)
				}
			}
			s.series = obs.NewSeries(reg, windowUS)
			s.seriesPath = path
			reg.SetSeries(s.series)
		}
		if f.Slo != "" {
			rules, err := slo.LoadRules(f.Slo)
			if err != nil {
				return nil, err
			}
			eng := slo.NewEngine(rules)
			driver := s.series
			if driver == nil {
				// No -series collector: the engine still needs window
				// boundaries to evaluate at, so install a default-window
				// series purely to drive it (its points are never dumped).
				driver = obs.NewSeries(reg, obs.DefaultSeriesWindowUS)
				reg.SetSeries(driver)
				s.sloSeries = driver
			}
			eng.Arm(reg, driver)
			s.slo = eng
		}
		if f.Metrics != "" && f.Metrics != "-" {
			if err := ensureDir(f.Metrics); err != nil {
				return nil, fmt.Errorf("metrics: %w", err)
			}
		}
		if f.HTTP != "" {
			if s.series == nil && s.sloSeries == nil {
				// No -series collector, but /statusz still wants the simulated
				// clock: install a clock-only series (its window is beyond any
				// horizon, so it never captures a point and job SeriesPoints
				// stay zero) purely for its high-water mark.
				reg.SetSeries(obs.NewSeries(reg, obs.ClockOnlyWindowUS))
			}
			srv := expose.New(reg)
			if s.slo != nil {
				srv.Handle("/alerts", s.slo)
				srv.OnMetrics(s.slo.WriteMetrics)
			}
			if err := srv.Start(f.HTTP); err != nil {
				return nil, err
			}
			s.http = srv
			// Announced on stderr so scripts can discover a ":0" port.
			fmt.Fprintf(s.stderr(), "obsflag: live endpoints on http://%s (/metrics /statusz /healthz /debug/pprof/)\n", srv.Addr())
		}
		s.Reg = reg
		// One experiment may run several simulations with the same seed
		// (paired strategy comparisons reuse the seed on purpose), but a run
		// label must denote ONE simulation or trace consumers would see two
		// interleaved causal histories under one key. Disambiguate repeat
		// instances with an instance suffix: s42, s42#2, s42#3, …
		var mu sync.Mutex
		instances := make(map[int64]int)
		sim.ObsProvider = func(seed int64) *obs.Registry {
			mu.Lock()
			instances[seed]++
			n := instances[seed]
			mu.Unlock()
			if n == 1 {
				return reg.WithRun(fmt.Sprintf("s%d", seed))
			}
			return reg.WithRun(fmt.Sprintf("s%d#%d", seed, n))
		}
	}
	if f.Flight != "" {
		dir, capacity, err := parseFlightSpec(f.Flight)
		if err != nil {
			return nil, err
		}
		if dir == "" {
			return nil, fmt.Errorf("flight: empty dump directory in %q", f.Flight)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("flight: %w", err)
		}
		s.flight = flight.New(capacity)
		s.flightDir = dir
	}
	if f.Pprof != "" {
		if err := os.MkdirAll(f.Pprof, 0o755); err != nil {
			return nil, fmt.Errorf("pprof: %w", err)
		}
		file, err := os.Create(filepath.Join(f.Pprof, "cpu.pprof"))
		if err != nil {
			return nil, fmt.Errorf("pprof: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return nil, fmt.Errorf("pprof: %w", err)
		}
		s.cpuFile = file
	}
	return s, nil
}

// Series returns the session's series collector (nil unless -series was
// set; the obs.Series API is nil-safe).
func (s *Session) Series() *obs.Series {
	if s == nil {
		return nil
	}
	return s.series
}

// SLO returns the armed streaming SLO engine (nil unless -slo was set;
// the slo.Engine API is nil-safe). Drivers use it to federate alert state
// over sweep heartbeats and stamp per-cell verdicts on summaries.
func (s *Session) SLO() *slo.Engine {
	if s == nil {
		return nil
	}
	return s.slo
}

// Flight returns the armed flight recorder (nil unless -flight was set;
// the flight API is nil-safe, so callers may wire it unconditionally).
func (s *Session) Flight() *flight.Recorder {
	if s == nil {
		return nil
	}
	return s.flight
}

// FlightDir returns the flight dump directory ("" unless -flight was set).
func (s *Session) FlightDir() string {
	if s == nil {
		return ""
	}
	return s.flightDir
}

// HTTP returns the live introspection server (nil unless -http was set).
// Drivers use it to mount their own views (e.g. /campaign/status) before
// the fleet starts.
func (s *Session) HTTP() *expose.Server {
	if s == nil {
		return nil
	}
	return s.http
}

// HTTPAddr returns the introspection server's bound address ("" when -http
// is unset), letting a driver report the resolved ":0" port.
func (s *Session) HTTPAddr() string {
	if s == nil || s.http == nil {
		return ""
	}
	return s.http.Addr()
}

// HandleSignals installs a SIGINT/SIGTERM handler that shuts the session
// down cleanly instead of losing buffered observability state on Ctrl-C:
// the flight ring is dumped as "interrupt-<tag>", then Close runs — trace
// sink flushed, metrics/series snapshots written, HTTP server closed —
// before the process exits with the conventional 128+signal code. Call
// once after Setup; a second signal during shutdown kills the process the
// default way. Safe on a nil session (no handler is installed).
func (s *Session) HandleSignals(tag string) {
	if s == nil {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		signal.Stop(ch) // restore default handling for a second signal
		fmt.Fprintf(s.stderr(), "obsflag: %v — flushing observability state\n", sig)
		if s.flight != nil && s.flightDir != "" {
			if path, err := s.flight.Dump(s.flightDir, "interrupt-"+tag); err != nil {
				fmt.Fprintln(s.stderr(), "obsflag: flight dump:", err)
			} else if path != "" {
				fmt.Fprintf(s.stderr(), "obsflag: flight ring dumped to %s\n", path)
			}
		}
		if err := s.Close(); err != nil {
			fmt.Fprintln(s.stderr(), "obsflag:", err)
		}
		code := 130 // 128 + SIGINT
		if sig == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()
}

// ensureDir creates the parent directory of path if it is missing.
func ensureDir(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		return os.MkdirAll(dir, 0o755)
	}
	return nil
}

// stderr returns the session's error stream.
func (s *Session) stderr() io.Writer {
	if s.Stderr != nil {
		return s.Stderr
	}
	return os.Stderr
}

// Close uninstalls sim.ObsProvider, flushes and closes the trace sink
// (reporting any events it had to drop), writes the metrics snapshot and
// the series dump, and finalizes the CPU/heap profiles. It is idempotent
// and safe on a nil session (so `defer sess.Close()` composes with an
// explicit error-checked Close), returning the first error.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Stop serving before tearing down what the handlers read.
	keep(s.http.Close())
	s.http = nil
	if s.Reg != nil {
		sim.ObsProvider = nil
		// Flush the final partial series window before the sink closes, so
		// SLO transitions evaluated at flush still reach the trace. The
		// series-dump path below must not Flush again (it would append a
		// degenerate extra point).
		s.series.Flush()
		s.sloSeries.Flush()
		sink := s.Reg.Sink()
		closeErr := sink.Close()
		// A sink drops events rather than aborting a simulation; surface
		// the loss here so a truncated trace never goes unnoticed. The loss
		// report subsumes a flush error at Close, so it takes priority.
		if n := sink.Errored(); n > 0 {
			err := fmt.Errorf("trace: %d events lost (first error: %w)", n, sink.FirstErr())
			fmt.Fprintln(s.stderr(), "obsflag:", err)
			keep(err)
		}
		keep(closeErr)
	}
	if s.flags.Metrics != "" && s.Reg != nil {
		snap := s.Reg.Snapshot()
		switch {
		case s.flags.Metrics == "-":
			fmt.Fprint(s.stderr(), snap.Text())
		case strings.HasSuffix(s.flags.Metrics, ".json"):
			data, err := snap.JSON()
			if err == nil {
				err = os.WriteFile(s.flags.Metrics, data, 0o644)
			}
			keep(err)
		default:
			keep(os.WriteFile(s.flags.Metrics, []byte(snap.Text()), 0o644))
		}
	}
	if s.series != nil {
		dump := s.series.Snapshot()
		switch {
		case s.seriesPath == "-":
			fmt.Fprint(s.stderr(), dump.Text())
		case strings.HasSuffix(s.seriesPath, ".jsonl"):
			data, err := dump.JSONL()
			if err == nil {
				err = os.WriteFile(s.seriesPath, data, 0o644)
			}
			keep(err)
		case strings.HasSuffix(s.seriesPath, ".json"):
			data, err := dump.JSON()
			if err == nil {
				err = os.WriteFile(s.seriesPath, data, 0o644)
			}
			keep(err)
		default:
			keep(os.WriteFile(s.seriesPath, []byte(dump.Text()), 0o644))
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
		runtime.GC() // fold recently freed memory out of the heap profile
		hf, err := os.Create(filepath.Join(s.flags.Pprof, "heap.pprof"))
		if err == nil {
			err = pprof.WriteHeapProfile(hf)
			if cerr := hf.Close(); err == nil {
				err = cerr
			}
		}
		keep(err)
	}
	return firstErr
}
