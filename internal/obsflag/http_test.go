package obsflag

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs/expose"
	"repro/internal/sim"
)

func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return res.StatusCode, string(body)
}

func TestHTTPSessionLifecycle(t *testing.T) {
	f := &Flags{HTTP: "127.0.0.1:0"}
	if !f.Enabled() {
		t.Fatal("Enabled() = false with -http set")
	}
	sess, err := f.Setup()
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	defer sess.Close()

	addr := sess.HTTPAddr()
	if addr == "" || sess.HTTP() == nil {
		t.Fatalf("HTTPAddr = %q, HTTP = %v", addr, sess.HTTP())
	}
	base := "http://" + addr

	if code, body := fetch(t, base+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// Exercise a simulated workload mid-session, then scrape it live.
	reg := sim.ObsProvider(7)
	reg.Counter("sim.events_executed").Add(42)
	reg.Series().Tick(1_000_000)

	code, body := fetch(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if _, err := expose.ValidateExposition([]byte(body)); err != nil {
		t.Errorf("/metrics invalid mid-run: %v", err)
	}
	if !strings.Contains(body, "sim_events_executed 42") {
		t.Errorf("/metrics misses live counter:\n%s", body)
	}

	if code, body := fetch(t, base+"/statusz?format=json"); code != 200 ||
		!strings.Contains(body, `"sim_clock_us": 1000000`) {
		t.Errorf("/statusz = %d %s", code, body)
	}

	// The clock-only series must never capture points (job SeriesPoints
	// telemetry stays zero without -series).
	if n := reg.Series().Points(); n != 0 {
		t.Errorf("clock-only series captured %d points", n)
	}

	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
	if sim.ObsProvider != nil {
		t.Error("ObsProvider still installed after Close")
	}
}

func TestHTTPPortInUseSurfaces(t *testing.T) {
	f1 := &Flags{HTTP: "127.0.0.1:0"}
	s1, err := f1.Setup()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	sim.ObsProvider = nil // second Setup would reinstall over it anyway

	f2 := &Flags{HTTP: s1.HTTPAddr()}
	if _, err := f2.Setup(); err == nil {
		t.Fatal("Setup on a busy port succeeded, want error")
	} else if !strings.Contains(err.Error(), "listen") {
		t.Errorf("busy-port error %q does not mention listen", err)
	}
}

func TestHTTPWithSeriesKeepsRealCollector(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{HTTP: "127.0.0.1:0", Series: dir + "/series.json,1s"}
	sess, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Reg.Series() != sess.Series() {
		t.Error("-http replaced the -series collector with a clock-only one")
	}
	if sess.Reg.Series().WindowUS() != 1_000_000 {
		t.Errorf("series window = %d, want 1s", sess.Reg.Series().WindowUS())
	}
}

func TestInertSessionHasNoHTTP(t *testing.T) {
	f := &Flags{}
	sess, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if sess.HTTP() != nil || sess.HTTPAddr() != "" {
		t.Errorf("inert session exposes HTTP: %q", sess.HTTPAddr())
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSess *Session
	if nilSess.HTTP() != nil || nilSess.HTTPAddr() != "" {
		t.Error("nil session HTTP accessors not nil-safe")
	}
}
