package assoc

import (
	"testing"
	"testing/quick"

	"repro/internal/phy"
	"repro/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{
		Type: FrameAssocReq,
		SA:   MAC{1, 2, 3, 4, 5, 6}, DA: MAC{7, 8, 9, 10, 11, 12},
		BSSID: MAC{7, 8, 9, 10, 11, 12},
		Seq:   99, Status: 0,
		IEs: []IE{SSIDIE("corpnet"), ChannelIE(11), MarshalQueueCfgIE(QueueConfig{HeadDrop: true, MaxQueue: 5})},
	}
	got, err := Parse(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != FrameAssocReq || got.SA != f.SA || got.BSSID != f.BSSID || got.Seq != 99 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if ssid, ok := got.SSID(); !ok || ssid != "corpnet" {
		t.Errorf("ssid = %q, %v", ssid, ok)
	}
	if ch, ok := got.Channel(); !ok || ch != 11 {
		t.Errorf("channel = %d, %v", ch, ok)
	}
	cfg, ok := got.ParseQueueCfgIE()
	if !ok || !cfg.HeadDrop || cfg.MaxQueue != 5 {
		t.Errorf("queue cfg = %+v, %v", cfg, ok)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(typ byte, sa, da [6]byte, seq, status uint16, ssid string, headDrop bool, q uint16) bool {
		if len(ssid) > 32 {
			ssid = ssid[:32]
		}
		in := Frame{
			Type: FrameType(typ % 6), SA: sa, DA: da, BSSID: da,
			Seq: seq, Status: status,
			IEs: []IE{SSIDIE(ssid), MarshalQueueCfgIE(QueueConfig{HeadDrop: headDrop, MaxQueue: q})},
		}
		out, err := Parse(in.Marshal())
		if err != nil {
			return false
		}
		gotSSID, _ := out.SSID()
		cfg, ok := out.ParseQueueCfgIE()
		return out.Type == in.Type && out.SA == sa && out.Seq == seq &&
			out.Status == status && gotSSID == ssid &&
			ok && cfg.HeadDrop == headDrop && cfg.MaxQueue == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsTruncation(t *testing.T) {
	if _, err := Parse(make([]byte, frameHeaderLen-1)); err == nil {
		t.Error("short frame accepted")
	}
	f := Frame{Type: FrameBeacon, IEs: []IE{SSIDIE("x")}}
	wire := f.Marshal()
	// Chop mid-IE.
	if _, err := Parse(wire[:len(wire)-1]); err == nil {
		t.Error("truncated IE accepted")
	}
	// IE length pointing past end.
	bad := append([]byte{}, wire...)
	bad[frameHeaderLen+1] = 200
	if _, err := Parse(bad); err == nil {
		t.Error("overlong IE accepted")
	}
}

func TestQueueCfgIgnoresForeignVendorIE(t *testing.T) {
	f := Frame{Type: FrameAssocReq, IEs: []IE{
		{ID: IEVendor, Data: []byte{0xaa, 0xbb, 0xcc, 1, 0, 5}}, // wrong OUI
		{ID: IEVendor, Data: []byte{0x00, 0x44}},                // too short
	}}
	if _, ok := f.ParseQueueCfgIE(); ok {
		t.Error("foreign vendor IE parsed as queue config")
	}
}

// testBed wires two responders on different channels to one station.
func testBed(t *testing.T, seed int64, extraA, extraB float64) (*sim.Simulator, *Station, *Responder, *Responder) {
	t.Helper()
	s := sim.New(seed)
	env := phy.NewEnvironment()
	mk := func(name string, ch phy.Channel, extra float64) *phy.Link {
		return phy.NewLink(s.RNG("link/"+name), env, phy.LinkParams{
			APPos: phy.Position{X: 0, Y: 0}, Chan: ch,
			Client:   phy.Static{Pos: phy.Position{X: 6, Y: 0}},
			ShadowDB: 0, FadeGood: 100 * sim.Minute, FadeBad: sim.Millisecond,
			ExtraLoss: extra,
		})
	}
	air := NewAir(s)
	ra := NewResponder("corp", MAC{2, 0, 0, 0, 0, 1}, phy.Chan1, mk("a", phy.Chan1, extraA))
	rb := NewResponder("corp", MAC{2, 0, 0, 0, 0, 2}, phy.Chan11, mk("b", phy.Chan11, extraB))
	air.AddResponder(ra)
	air.AddResponder(rb)
	return s, NewStation(s, air), ra, rb
}

func TestScanFindsBothAPsStrongestFirst(t *testing.T) {
	s, st, _, _ := testBed(t, 1, 0, 10)
	var got []ScanResult
	s.Schedule(0, func() {
		st.Scan([]phy.Channel{phy.Chan1, phy.Chan6, phy.Chan11}, 20*sim.Millisecond, func(r []ScanResult) {
			got = r
		})
	})
	s.RunAll()
	if len(got) != 2 {
		t.Fatalf("scan found %d BSSes, want 2", len(got))
	}
	if got[0].BSSID != (MAC{2, 0, 0, 0, 0, 1}) {
		t.Errorf("strongest-first ordering wrong: %+v", got)
	}
	if got[0].RSSIdBm <= got[1].RSSIdBm {
		t.Error("RSSI ordering wrong")
	}
	// Scan consumed a dwell per channel.
	if s.Now() < sim.Time(60*sim.Millisecond) {
		t.Errorf("scan finished too fast: %v", s.Now())
	}
}

func TestScanMissesDeadAP(t *testing.T) {
	s, st, _, _ := testBed(t, 2, 0, 60) // B unreachable
	var got []ScanResult
	s.Schedule(0, func() {
		st.Scan([]phy.Channel{phy.Chan1, phy.Chan11}, 10*sim.Millisecond, func(r []ScanResult) { got = r })
	})
	s.RunAll()
	if len(got) != 1 {
		t.Fatalf("scan found %d BSSes, want only the live one", len(got))
	}
}

func TestAssociateDeliversQueueConfig(t *testing.T) {
	s, st, ra, _ := testBed(t, 3, 0, 0)
	var gotCfg QueueConfig
	var gotHas bool
	ra.OnAssociate = func(cfg QueueConfig, has bool) { gotCfg, gotHas = cfg, has }
	ok := false
	s.Schedule(0, func() {
		st.Associate(MAC{6, 0, 0, 0, 0, 9}, ra.BSSID, AssocOptions{
			QueueCfg: &QueueConfig{HeadDrop: true, MaxQueue: 5},
		}, func(b bool) { ok = b })
	})
	s.RunAll()
	if !ok || !ra.Associated() {
		t.Fatal("association failed on a clean link")
	}
	if !gotHas || !gotCfg.HeadDrop || gotCfg.MaxQueue != 5 {
		t.Fatalf("queue config not delivered: %+v (has %v)", gotCfg, gotHas)
	}
}

func TestAssociateWithoutQueueCfg(t *testing.T) {
	s, st, ra, _ := testBed(t, 4, 0, 0)
	has := true
	ra.OnAssociate = func(_ QueueConfig, h bool) { has = h }
	s.Schedule(0, func() {
		st.Associate(MAC{6, 0, 0, 0, 0, 9}, ra.BSSID, AssocOptions{}, func(bool) {})
	})
	s.RunAll()
	if has {
		t.Error("queue config reported present without the IE")
	}
}

func TestAssociateRetriesOnMarginalLink(t *testing.T) {
	// A marginal link drops some handshakes; with retries the association
	// should usually still complete, and the state machine must not hang.
	succ := 0
	for seed := int64(0); seed < 20; seed++ {
		s, st, ra, _ := testBed(t, 100+seed, 22, 0)
		done := false
		ok := false
		s.Schedule(0, func() {
			st.Associate(MAC{6, 0, 0, 0, 0, 9}, ra.BSSID, AssocOptions{Retries: 5},
				func(b bool) { done, ok = true, b })
		})
		s.RunAll()
		if !done {
			t.Fatal("association state machine hung")
		}
		if ok {
			succ++
		}
	}
	if succ == 0 {
		t.Error("no association ever succeeded on a marginal link")
	}
}

func TestAssociateUnknownBSSID(t *testing.T) {
	s, st, _, _ := testBed(t, 5, 0, 0)
	ok := true
	s.Schedule(0, func() {
		st.Associate(MAC{6, 0, 0, 0, 0, 9}, MAC{9, 9, 9, 9, 9, 9}, AssocOptions{}, func(b bool) { ok = b })
	})
	s.RunAll()
	if ok {
		t.Error("association to unknown BSSID succeeded")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Errorf("MAC string = %q", m.String())
	}
	if FrameAssocReq.String() != "assoc-req" || FrameType(99).String() == "" {
		t.Error("frame type strings broken")
	}
}
