package assoc

import "testing"

// FuzzParse exercises the management-frame decoder with arbitrary bytes:
// never panic; accepted frames re-marshal to a parseable equivalent.
func FuzzParse(f *testing.F) {
	seed := Frame{Type: FrameAssocReq, IEs: []IE{SSIDIE("net"), ChannelIE(6)}}
	f.Add(seed.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, frameHeaderLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Parse(data)
		if err != nil {
			return
		}
		out, err := Parse(fr.Marshal())
		if err != nil {
			t.Fatalf("re-marshalled frame rejected: %v", err)
		}
		if out.Type != fr.Type || out.SA != fr.SA || out.Seq != fr.Seq || len(out.IEs) != len(fr.IEs) {
			t.Fatal("round-trip mismatch")
		}
	})
}
