package assoc

import (
	"repro/internal/phy"
	"repro/internal/sim"
)

// Air carries management frames between stations and responders that share
// a channel. Loss follows each pair's radio link, so a marginal AP can
// drop probe and association frames — which is why the state machine
// retries.
type Air struct {
	sim        *sim.Simulator
	responders []*Responder
}

// NewAir creates the management medium.
func NewAir(s *sim.Simulator) *Air { return &Air{sim: s} }

// mgmtAirtime is the per-management-frame transaction time (frame + SIFS +
// response overheads), a few hundred microseconds at basic rate.
const mgmtAirtime = 400 * sim.Microsecond

// Responder is the AP side of the management plane: it answers probes on
// its channel and accepts associations, handing any DiversiFi queue-config
// IE to the AP implementation.
type Responder struct {
	SSID    string
	BSSID   MAC
	Channel phy.Channel

	air  *Air
	link *phy.Link // radio path to the (single modelled) client
	// OnAssociate is invoked when an association completes; the bool
	// reports whether a queue-config IE was present.
	OnAssociate func(QueueConfig, bool)

	associated bool
	assocSeq   uint16
}

// AddResponder registers an AP with the medium.
func (a *Air) AddResponder(r *Responder) {
	r.air = a
	a.responders = append(a.responders, r)
}

// NewResponder builds an AP-side responder reachable over link.
func NewResponder(ssid string, bssid MAC, ch phy.Channel, link *phy.Link) *Responder {
	return &Responder{SSID: ssid, BSSID: bssid, Channel: ch, link: link}
}

// Associated reports whether the client completed an association.
func (r *Responder) Associated() bool { return r.associated }

// ScanResult is one discovered BSS.
type ScanResult struct {
	SSID    string
	BSSID   MAC
	Channel phy.Channel
	RSSIdBm float64
}

// Station is the client side: it owns one radio and any number of virtual
// adapters, scanning and associating on their behalf.
type Station struct {
	sim *sim.Simulator
	air *Air
}

// NewStation creates the client's management entity.
func NewStation(s *sim.Simulator, air *Air) *Station {
	return &Station{sim: s, air: air}
}

// Scan probes every channel in order, dwelling dwell per channel, and
// delivers the discovered BSSes (strongest first) to done. Each probe
// transaction succeeds per the underlying radio link, so weak APs can be
// missed — like a real scan.
func (st *Station) Scan(channels []phy.Channel, dwell sim.Duration, done func([]ScanResult)) {
	var results []ScanResult
	var next func(i int)
	next = func(i int) {
		if i >= len(channels) {
			// Sort strongest-first (n is tiny).
			for a := 1; a < len(results); a++ {
				for b := a; b > 0 && results[b].RSSIdBm > results[b-1].RSSIdBm; b-- {
					results[b], results[b-1] = results[b-1], results[b]
				}
			}
			done(results)
			return
		}
		ch := channels[i]
		// All responders on this channel answer the probe within the dwell.
		for _, r := range st.air.responders {
			if !r.Channel.Overlaps(ch) && r.Channel != ch {
				continue
			}
			// Probe request + response each survive per the radio link.
			now := st.sim.Now()
			if !r.link.Attempt(now, phy.RateTable[0]) {
				continue
			}
			if !r.link.Attempt(now.Add(mgmtAirtime), phy.RateTable[0]) {
				continue
			}
			results = append(results, ScanResult{
				SSID:    r.SSID,
				BSSID:   r.BSSID,
				Channel: r.Channel,
				RSSIdBm: r.link.RSSIdBm(now),
			})
		}
		st.sim.After(dwell, func() { next(i + 1) })
	}
	next(0)
}

// AssocOptions parameterise an association attempt.
type AssocOptions struct {
	// QueueCfg, when non-nil, is signalled via the vendor IE (§5.3.1).
	QueueCfg *QueueConfig
	// Retries is the number of association attempts (default 3).
	Retries int
	// Timeout per attempt (default 20 ms).
	Timeout sim.Duration
}

// Associate runs the association handshake with the responder owning
// bssid; done receives success. The handshake frames traverse the radio
// link and may be lost, triggering retries.
func (st *Station) Associate(adapter MAC, bssid MAC, opts AssocOptions, done func(bool)) {
	if opts.Retries <= 0 {
		opts.Retries = 3
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 20 * sim.Millisecond
	}
	var target *Responder
	for _, r := range st.air.responders {
		if r.BSSID == bssid {
			target = r
			break
		}
	}
	if target == nil {
		done(false)
		return
	}

	req := Frame{Type: FrameAssocReq, SA: adapter, DA: bssid, BSSID: bssid}
	req.IEs = append(req.IEs, SSIDIE(target.SSID), ChannelIE(target.Channel.Number))
	if opts.QueueCfg != nil {
		req.IEs = append(req.IEs, MarshalQueueCfgIE(*opts.QueueCfg))
	}
	wire := req.Marshal()

	var attempt func(n int)
	attempt = func(n int) {
		if n >= opts.Retries {
			done(false)
			return
		}
		now := st.sim.Now()
		// Request over the air.
		if !target.link.Attempt(now, phy.RateTable[0]) {
			st.sim.After(opts.Timeout, func() { attempt(n + 1) })
			return
		}
		// The responder parses the request — a real codec round trip.
		parsed, err := Parse(wire)
		if err != nil {
			done(false)
			return
		}
		cfg, hasCfg := parsed.ParseQueueCfgIE()
		// Response over the air.
		respAt := now.Add(2 * mgmtAirtime)
		if !target.link.Attempt(respAt, phy.RateTable[0]) {
			st.sim.After(opts.Timeout, func() { attempt(n + 1) })
			return
		}
		st.sim.Schedule(respAt, func() {
			target.associated = true
			target.assocSeq++
			if target.OnAssociate != nil {
				target.OnAssociate(cfg, hasCfg)
			}
			done(true)
		})
	}
	attempt(0)
}
