// Package assoc implements the 802.11 management plane DiversiFi's
// multi-link association rides on (§5.2.2): beacon/probe/association
// frames with information elements, the vendor IE through which the client
// signals its desired PSM queue policy and depth to a customized AP
// (§5.3.1), channel scanning, and the per-virtual-adapter association
// state machine.
package assoc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is a 48-bit hardware address. DiversiFi's client fabricates one per
// virtual adapter so it can hold multiple associations with one radio.
type MAC [6]byte

// String formats the address conventionally.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones address probe requests are sent to.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// FrameType enumerates the management frames the substrate needs.
type FrameType byte

const (
	FrameBeacon FrameType = iota
	FrameProbeReq
	FrameProbeResp
	FrameAssocReq
	FrameAssocResp
	FrameDisassoc
)

func (t FrameType) String() string {
	switch t {
	case FrameBeacon:
		return "beacon"
	case FrameProbeReq:
		return "probe-req"
	case FrameProbeResp:
		return "probe-resp"
	case FrameAssocReq:
		return "assoc-req"
	case FrameAssocResp:
		return "assoc-resp"
	case FrameDisassoc:
		return "disassoc"
	default:
		return fmt.Sprintf("FrameType(%d)", byte(t))
	}
}

// Information-element IDs (802.11 §9.4.2).
const (
	IESSID    = 0
	IEDSParam = 3 // current channel
	IEVendor  = 221
)

// QueueCfgOUI is the vendor OUI of DiversiFi's queue-configuration IE —
// "an unused information element in the 802.11 association request frame"
// (§5.3.1).
var QueueCfgOUI = [3]byte{0x00, 0x44, 0x46} // "\0DF"

// IE is one information element.
type IE struct {
	ID   byte
	Data []byte
}

// Frame is a management frame. Payload semantics depend on Type; Status is
// used by association responses (0 = success).
type Frame struct {
	Type   FrameType
	SA, DA MAC // source and destination
	BSSID  MAC
	Seq    uint16
	Status uint16
	IEs    []IE
}

// Errors returned by Parse.
var (
	ErrFrameShort = errors.New("assoc: frame too short")
	ErrBadIE      = errors.New("assoc: truncated information element")
)

// frame wire layout: type(1) sa(6) da(6) bssid(6) seq(2) status(2) ies...
const frameHeaderLen = 23

// Marshal serializes the frame.
func (f *Frame) Marshal() []byte {
	n := frameHeaderLen
	for _, ie := range f.IEs {
		n += 2 + len(ie.Data)
	}
	buf := make([]byte, n)
	buf[0] = byte(f.Type)
	copy(buf[1:7], f.SA[:])
	copy(buf[7:13], f.DA[:])
	copy(buf[13:19], f.BSSID[:])
	binary.BigEndian.PutUint16(buf[19:21], f.Seq)
	binary.BigEndian.PutUint16(buf[21:23], f.Status)
	off := frameHeaderLen
	for _, ie := range f.IEs {
		buf[off] = ie.ID
		buf[off+1] = byte(len(ie.Data))
		copy(buf[off+2:], ie.Data)
		off += 2 + len(ie.Data)
	}
	return buf
}

// Parse decodes a frame; IE data aliases the input.
func Parse(data []byte) (Frame, error) {
	if len(data) < frameHeaderLen {
		return Frame{}, ErrFrameShort
	}
	var f Frame
	f.Type = FrameType(data[0])
	copy(f.SA[:], data[1:7])
	copy(f.DA[:], data[7:13])
	copy(f.BSSID[:], data[13:19])
	f.Seq = binary.BigEndian.Uint16(data[19:21])
	f.Status = binary.BigEndian.Uint16(data[21:23])
	off := frameHeaderLen
	for off < len(data) {
		if off+2 > len(data) {
			return Frame{}, ErrBadIE
		}
		l := int(data[off+1])
		if off+2+l > len(data) {
			return Frame{}, ErrBadIE
		}
		f.IEs = append(f.IEs, IE{ID: data[off], Data: data[off+2 : off+2+l]})
		off += 2 + l
	}
	return f, nil
}

// FindIE returns the first IE with the given ID.
func (f *Frame) FindIE(id byte) ([]byte, bool) {
	for _, ie := range f.IEs {
		if ie.ID == id {
			return ie.Data, true
		}
	}
	return nil, false
}

// QueueConfig is the payload of DiversiFi's vendor IE.
type QueueConfig struct {
	HeadDrop bool
	MaxQueue uint16
}

// MarshalQueueCfgIE builds the vendor IE carrying cfg.
func MarshalQueueCfgIE(cfg QueueConfig) IE {
	data := make([]byte, 6)
	copy(data[:3], QueueCfgOUI[:])
	if cfg.HeadDrop {
		data[3] = 1
	}
	binary.BigEndian.PutUint16(data[4:6], cfg.MaxQueue)
	return IE{ID: IEVendor, Data: data}
}

// ParseQueueCfgIE extracts a QueueConfig from the frame's vendor IEs.
func (f *Frame) ParseQueueCfgIE() (QueueConfig, bool) {
	for _, ie := range f.IEs {
		if ie.ID != IEVendor || len(ie.Data) != 6 {
			continue
		}
		if [3]byte(ie.Data[:3]) != QueueCfgOUI {
			continue
		}
		return QueueConfig{
			HeadDrop: ie.Data[3] == 1,
			MaxQueue: binary.BigEndian.Uint16(ie.Data[4:6]),
		}, true
	}
	return QueueConfig{}, false
}

// SSIDIE builds an SSID element.
func SSIDIE(ssid string) IE { return IE{ID: IESSID, Data: []byte(ssid)} }

// ChannelIE builds a DS-parameter (current channel) element.
func ChannelIE(channel int) IE { return IE{ID: IEDSParam, Data: []byte{byte(channel)}} }

// SSID returns the frame's SSID element, if present.
func (f *Frame) SSID() (string, bool) {
	d, ok := f.FindIE(IESSID)
	return string(d), ok
}

// Channel returns the frame's DS-parameter channel, if present.
func (f *Frame) Channel() (int, bool) {
	d, ok := f.FindIE(IEDSParam)
	if !ok || len(d) != 1 {
		return 0, false
	}
	return int(d[0]), true
}
