package core

import (
	"repro/internal/ap"
	"repro/internal/netsim"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The related work the paper contrasts with ([36], Vergetis et al.) uses
// forward error correction over a single link to recover from (non-bursty)
// loss. This file implements that baseline: an XOR parity packet after
// every K data packets. A single loss inside a block is repaired when the
// block's parity arrives — which costs 1/K extra airtime always, and
// cannot repair the bursty multi-packet losses that dominate WiFi (§4.2),
// which is exactly the comparison DiversiFi's reactive replication wins.

// FECResult is one single-link call protected by XOR parity.
type FECResult struct {
	Scenario Scenario
	// Decoded is the post-repair trace (repaired packets appear with the
	// parity packet's arrival time).
	Decoded *trace.Trace
	// Raw is the pre-repair trace of the same run.
	Raw *trace.Trace
	// ParitySent and Repaired count the scheme's cost and benefit.
	ParitySent int
	Repaired   int
}

// RunFEC simulates the stronger link carrying the stream plus one XOR
// parity packet per k data packets.
func RunFEC(sc Scenario, k int) FECResult {
	if k < 2 {
		k = 2
	}
	s := sim.New(sc.Seed)
	links := sc.Build(s)
	link := links.A
	if links.B.RSSIdBm(0) > links.A.RSSIdBm(0) {
		link = links.B
	}
	count := sc.PacketCount()
	raw := trace.New(count, sc.Profile.Spacing)

	// Parity packets ride the same stream with sequence numbers >= count;
	// parity i protects data packets [i*k, i*k+k).
	const parityBase = 1 << 28
	parityArrival := map[int]sim.Time{}
	paritySent := 0

	a := ap.New(s, ap.Config{Name: "fec", Chan: link.Channel()}, link, s.RNG("ap/fec"),
		ap.AlwaysListening{}, func(p pkt.Packet, at sim.Time) {
			if p.Seq >= parityBase {
				parityArrival[p.Seq-parityBase] = at
				return
			}
			raw.RecordArrival(p.Seq, at)
		})
	wire := netsim.NewWire(s, "fecLan", lanLatency, lanJitter, 0)
	enq := a.Enqueue

	for seq := 0; seq < count; seq++ {
		seq := seq
		at := sim.Time(seq) * sim.Time(sc.Profile.Spacing)
		s.Schedule(at, func() {
			p := pkt.Packet{StreamID: 1, Seq: seq, Size: sc.Profile.PacketBytes, SentAt: s.Now()}
			raw.RecordSent(seq, p.SentAt)
			wire.Send(p, enq)
			if (seq+1)%k == 0 {
				// Emit the block's parity right after its last member.
				par := pkt.Packet{
					StreamID: 1,
					Seq:      parityBase + seq/k,
					Size:     sc.Profile.PacketBytes,
					SentAt:   s.Now(),
				}
				wire.Send(par, enq)
			}
		})
	}
	paritySent = (count + k - 1) / k
	s.Run(sim.Time(sc.Duration + 2*sim.Second))

	// Decode: a block with exactly one missing data packet and a received
	// parity repairs that packet at max(parity arrival, last data arrival).
	decoded := trace.New(count, sc.Profile.Spacing)
	repaired := 0
	for seq := 0; seq < count; seq++ {
		decoded.CopyFrom(raw, seq)
	}
	for block := 0; block*k < count; block++ {
		pAt, ok := parityArrival[block]
		if !ok {
			continue
		}
		missing := -1
		complete := true
		var lastData sim.Time
		for seq := block * k; seq < (block+1)*k && seq < count; seq++ {
			if !raw.Arrived(seq) {
				if missing >= 0 {
					complete = false
					break
				}
				missing = seq
				continue
			}
			if at := raw.ArrivalTime(seq); at > lastData {
				lastData = at
			}
		}
		if !complete || missing < 0 {
			continue
		}
		at := pAt
		if lastData > at {
			at = lastData
		}
		decoded.RecordSent(missing, sim.Time(missing)*sim.Time(sc.Profile.Spacing))
		decoded.RecordArrival(missing, at)
		repaired++
	}
	return FECResult{Scenario: sc, Decoded: decoded, Raw: raw, ParitySent: paritySent, Repaired: repaired}
}
