package core

import (
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Office dimensions from §6.1, exported for the scenario generator
// (internal/scenario), which places APs, clients, and interferers inside
// the same geometry the paper's experiments use.
const (
	OfficeWidthM  = officeW
	OfficeHeightM = officeH
)

// ScenarioLink is the exported mirror of one AP↔client link's stochastic
// parameters: static attenuation, lognormal shadowing, and the
// Gilbert–Elliott deep-fade process. Durations are exact simulator
// microseconds — unlike the float-seconds JSON encoding, a
// Params/FromParams round trip loses nothing.
type ScenarioLink struct {
	ExtraLossDB  float64
	ShadowDB     float64
	ShadowDecorr sim.Duration
	FadeGood     sim.Duration // mean Gilbert–Elliott Good sojourn
	FadeBad      sim.Duration // mean Gilbert–Elliott Bad sojourn
	FadeDepthDB  float64
}

// ScenarioParams is the complete, exported description of a Scenario: the
// call shape, the office geometry, both links' stochastic parameters, and
// every impairment knob. It exists so scenario *generators* (the
// declarative scenario-v1 engine in internal/scenario) can construct
// scenarios field-by-field without reaching into unexported state, and so
// equivalence tests can compare two scenarios exactly.
//
// Params and FromParams are exact inverses: FromParams(sc.Params()) == sc
// for every scenario, bit-for-bit.
type ScenarioParams struct {
	Impairment Impairment
	Profile    traffic.Profile
	Duration   sim.Duration
	MIMOOrder  int
	Seed       int64

	APA, APB  phy.Position
	ChanA     phy.Channel
	ChanB     phy.Channel
	ClientPos phy.Position // static placement (ignored when Mobile)
	Mobile    bool
	WalkSpeed float64      // m/s; 0 = default 1.2
	WalkPause sim.Duration // pause between waypoint legs; 0 = default 2 s
	LinkA     ScenarioLink
	LinkB     ScenarioLink

	CongestA    bool
	CongestB    bool
	CongestHit  float64 // collision probability during saturated periods
	CongestBusy float64 // busy fraction during saturated periods

	Oven      bool
	OvenPos   phy.Position
	OvenStart sim.Time     // pinned duty interval start (used when OvenDur > 0)
	OvenDur   sim.Duration // 0 = draw the interval from the oven stream

	LateShiftDB    float64
	LateAt         sim.Duration
	LateOnStronger bool
}

func linkToParams(s linkSpec) ScenarioLink {
	return ScenarioLink{
		ExtraLossDB:  s.extraLoss,
		ShadowDB:     s.shadowDB,
		ShadowDecorr: s.shadowT,
		FadeGood:     s.fadeGood,
		FadeBad:      s.fadeBad,
		FadeDepthDB:  s.fadeDepth,
	}
}

func linkFromParams(p ScenarioLink) linkSpec {
	return linkSpec{
		extraLoss: p.ExtraLossDB,
		shadowDB:  p.ShadowDB,
		shadowT:   p.ShadowDecorr,
		fadeGood:  p.FadeGood,
		fadeBad:   p.FadeBad,
		fadeDepth: p.FadeDepthDB,
	}
}

// Params returns the scenario's complete exported description.
func (sc Scenario) Params() ScenarioParams {
	return ScenarioParams{
		Impairment:     sc.Impairment,
		Profile:        sc.Profile,
		Duration:       sc.Duration,
		MIMOOrder:      sc.MIMOOrder,
		Seed:           sc.Seed,
		APA:            sc.apA,
		APB:            sc.apB,
		ChanA:          sc.chA,
		ChanB:          sc.chB,
		ClientPos:      sc.clientPos,
		Mobile:         sc.mobile,
		WalkSpeed:      sc.walkSpeed,
		WalkPause:      sc.walkPause,
		LinkA:          linkToParams(sc.specA),
		LinkB:          linkToParams(sc.specB),
		CongestA:       sc.congestA,
		CongestB:       sc.congestB,
		CongestHit:     sc.congestHit,
		CongestBusy:    sc.congestBzy,
		Oven:           sc.hasOven,
		OvenPos:        sc.ovenPos,
		OvenStart:      sc.ovenStart,
		OvenDur:        sc.ovenDur,
		LateShiftDB:    sc.lateShift,
		LateAt:         sc.lateAt,
		LateOnStronger: sc.lateOnStronger,
	}
}

// FromParams builds the scenario described by p.
func FromParams(p ScenarioParams) Scenario {
	return Scenario{
		Impairment:     p.Impairment,
		Profile:        p.Profile,
		Duration:       p.Duration,
		MIMOOrder:      p.MIMOOrder,
		Seed:           p.Seed,
		apA:            p.APA,
		apB:            p.APB,
		chA:            p.ChanA,
		chB:            p.ChanB,
		clientPos:      p.ClientPos,
		mobile:         p.Mobile,
		walkSpeed:      p.WalkSpeed,
		walkPause:      p.WalkPause,
		specA:          linkFromParams(p.LinkA),
		specB:          linkFromParams(p.LinkB),
		congestA:       p.CongestA,
		congestB:       p.CongestB,
		congestHit:     p.CongestHit,
		congestBzy:     p.CongestBusy,
		hasOven:        p.Oven,
		ovenPos:        p.OvenPos,
		ovenStart:      p.OvenStart,
		ovenDur:        p.OvenDur,
		lateShift:      p.LateShiftDB,
		lateAt:         p.LateAt,
		lateOnStronger: p.LateOnStronger,
	}
}
