package core_test

import (
	"fmt"
	"repro/internal/sim/rng"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/voip"
)

// ExampleRunDualCall simulates one call received over both WiFi links and
// compares stock link selection with cross-link replication.
func ExampleRunDualCall() {
	rng := rng.New(1)
	sc := core.RandomScenario(rng, core.ImpWeakLink, traffic.G711, 2016).
		WithDuration(30 * sim.Second)

	dual := core.RunDualCall(sc)
	deadline := traffic.G711.Deadline
	sel := stats.LossRate(dual.Stronger().LostWithDeadline(deadline))
	rep := stats.LossRate(dual.CrossLink().LostWithDeadline(deadline))
	fmt.Printf("replication loses less than selection: %v\n", rep <= sel)
	// Output:
	// replication loses less than selection: true
}

// ExampleRunDiversiFi runs the single-NIC DiversiFi client against a
// fading primary link and shows the recovery accounting.
func ExampleRunDiversiFi() {
	sc := core.ControlledScenario(11, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 1200*sim.Millisecond, 60*sim.Millisecond, 60)
	r := core.RunDiversiFi(sc, core.DiversiFiOptions{Mode: core.ModeCustomAP})

	recoveredMost := r.Client.Recovered*2 > r.Client.LossesDetected
	cheap := r.WastefulRate < 0.02
	fmt.Printf("recovered most losses: %v, wasteful duplication under 2%%: %v\n",
		recoveredMost, cheap)
	// Output:
	// recovered most losses: true, wasteful duplication under 2%: true
}

// ExampleDualCall_Handoff contrasts an RSSI-driven handoff client with
// replication on a mobile scenario.
func ExampleDualCall_Handoff() {
	rng := rng.New(3)
	sc := core.RandomScenario(rng, core.ImpMobility, traffic.G711, 900)
	d := core.RunDualCall(sc)

	handoff := d.Handoff(6, 50*sim.Millisecond)
	cross := d.CrossLink()
	deadline := 150 * sim.Millisecond
	fmt.Printf("replication beats handoff: %v\n",
		stats.LossRate(cross.LostWithDeadline(deadline)) <=
			stats.LossRate(handoff.LostWithDeadline(deadline)))
	// Output:
	// replication beats handoff: true
}

// ExampleScenario_marshalJSON shows scenario round-tripping for
// reproducible sharing of a run.
func Example_scenarioReplay() {
	rng := rng.New(4)
	sc := core.RandomScenario(rng, core.ImpCongestion, traffic.G711, 77).
		WithDuration(20 * sim.Second)
	a := core.RunDualCall(sc)
	b := core.RunDualCall(sc) // same scenario, same seed: identical run
	fmt.Printf("bit-identical replay: %v\n", a.RSSIA == b.RSSIA)
	// Output:
	// bit-identical replay: true
}

// Example_voipAssessment scores a received trace the way the paper's PCR
// analysis does.
func Example_voipAssessment() {
	sc := core.ControlledScenario(5, traffic.G711, 30*sim.Second, 0, 0)
	d := core.RunDualCall(sc)
	q := voip.Assess(d.Stronger(), traffic.G711)
	fmt.Printf("clean call rates well: %v\n", q.MOS > 4 && !q.Poor)
	// Output:
	// clean call rates well: true
}
