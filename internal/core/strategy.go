package core

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// The §4 strategy comparison works exactly as the paper's does: a two-NIC
// run records the full stream on both links, and each strategy's receiver
// trace is synthesized from those recordings. Stronger and Better are
// selection strategies; Divert is fine-grained selection; CrossLink is
// replication (the union of both links).

// Stronger returns the trace of the higher-RSSI link — what a stock OS
// association policy delivers.
func (d DualCall) Stronger() *trace.Trace { return d.StrongerTrace() }

// CrossLink returns the merged trace: a packet is lost only if both links
// lost it, and the earliest copy's timing wins.
func (d DualCall) CrossLink() *trace.Trace {
	return trace.Merge(d.TraceA, d.TraceB)
}

// Better samples both links for samplePeriod (the paper uses 5 s), then
// settles on whichever lost less during the trial for the rest of the
// call. During the trial it listens on the stronger link, as an OS would.
func (d DualCall) Better(samplePeriod sim.Duration) *trace.Trace {
	n := d.TraceA.Len()
	sampleN := d.TraceA.WindowPackets(samplePeriod)
	if sampleN > n {
		sampleN = n
	}
	lossIn := func(t *trace.Trace) int {
		lost := 0
		for seq := 0; seq < sampleN; seq++ {
			if !t.Arrived(seq) {
				lost++
			}
		}
		return lost
	}
	chosen := d.TraceA
	if lossIn(d.TraceB) < lossIn(d.TraceA) {
		chosen = d.TraceB
	}
	out := trace.New(n, d.TraceA.Spacing)
	strong := d.StrongerTrace()
	for seq := 0; seq < n; seq++ {
		if seq < sampleN {
			out.CopyFrom(strong, seq)
		} else {
			out.CopyFrom(chosen, seq)
		}
	}
	return out
}

// Divert implements the fine-grained link selection of Miu et al. [28]: a
// link switch triggers whenever the number of lost frames within a window
// of h frames reaches t (the paper evaluates h = 1, t = 1). Packets lost
// before a switch are not recovered — selection only helps future packets.
func (d DualCall) Divert(h, t int) *trace.Trace {
	if h < 1 {
		h = 1
	}
	if t < 1 {
		t = 1
	}
	n := d.TraceA.Len()
	out := trace.New(n, d.TraceA.Spacing)
	cur, other := d.StrongerTrace(), d.WeakerTrace()
	window := make([]bool, 0, h)
	for seq := 0; seq < n; seq++ {
		out.CopyFrom(cur, seq)
		lost := !cur.Arrived(seq)
		window = append(window, lost)
		if len(window) > h {
			window = window[1:]
		}
		cnt := 0
		for _, l := range window {
			if l {
				cnt++
			}
		}
		if cnt >= t {
			cur, other = other, cur
			window = window[:0]
		}
	}
	return out
}

// Handoff synthesizes the behaviour of an RSSI-driven handoff client (the
// make-before-break mobility systems of related work, e.g. [19]): the
// client camps on the stronger link and re-associates to the other when
// its RSSI exceeds the current one by hysteresisDB (checked once per
// second). Each handoff blanks reception for the given outage (hundreds of
// ms for scan+reassociate; ~tens for make-before-break). Handoff is still
// *selection*: packets lost before a switch stay lost.
func (d DualCall) Handoff(hysteresisDB float64, outage sim.Duration) *trace.Trace {
	n := d.TraceA.Len()
	out := trace.New(n, d.TraceA.Spacing)
	onA := d.StrongerIsA()
	perSec := int(sim.Second / d.TraceA.Spacing)
	if perSec < 1 {
		perSec = 1
	}
	outagePkts := int(outage / d.TraceA.Spacing)
	blankUntil := -1
	for seq := 0; seq < n; seq++ {
		if seq%perSec == 0 {
			idx := seq / perSec
			if idx < len(d.RSSISeriesA) && idx < len(d.RSSISeriesB) {
				a, b := d.RSSISeriesA[idx], d.RSSISeriesB[idx]
				if onA && b > a+hysteresisDB {
					onA = false
					blankUntil = seq + outagePkts
				} else if !onA && a > b+hysteresisDB {
					onA = true
					blankUntil = seq + outagePkts
				}
			}
		}
		src := d.TraceA
		if !onA {
			src = d.TraceB
		}
		out.CopyFrom(src, seq)
		if seq < blankUntil {
			// Reception blanked during the handoff outage.
			out.RecordSent(seq, src.SentTime(seq))
			out.ClearArrival(seq)
		}
	}
	return out
}
