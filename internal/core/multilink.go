package core

import (
	"repro/internal/ap"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The paper replicates over two links ("a primary and a secondary") and
// leaves wider fan-out unexplored. This extension measures how the
// diversity gain scales with the number of links, using the §3.3 finding
// that clients typically see 4+ distinct channels.

// multiChannelPlan assigns extra links to distinct channels: the 2.4 GHz
// 1/6/11 plan first, then 5 GHz.
var multiChannelPlan = []phy.Channel{
	phy.Chan1, phy.Chan11, phy.Chan6, phy.Chan36, phy.Chan48, {Band: phy.Band5G, Number: 157},
}

// multiAPPositions spreads APs around the office perimeter.
var multiAPPositions = []phy.Position{
	{X: 2, Y: 2}, {X: officeW - 2, Y: officeH - 2},
	{X: officeW - 2, Y: 2}, {X: 2, Y: officeH - 2},
	{X: officeW / 2, Y: 1}, {X: officeW / 2, Y: officeH - 1},
}

// RunMultiCall simulates one call received concurrently on n links
// (1 ≤ n ≤ 6) with a dedicated NIC per link, returning per-link traces in
// decreasing call-start RSSI order. trace.Merge over the first k traces
// gives k-link replication.
func RunMultiCall(sc Scenario, n int) []*trace.Trace {
	if n < 1 {
		n = 1
	}
	if n > len(multiAPPositions) {
		n = len(multiAPPositions)
	}
	s := sim.New(sc.Seed)
	// Build the scenario's links and environment, then add extra links
	// beyond the first two on the same environment and client trajectory.
	built := sc.Build(s)
	env := built.Env

	mob := built.Mob
	linkList := []*phy.Link{built.A, built.B}
	rng := s.RNG("multilink/spec")
	for i := 2; i < n; i++ {
		spec := sc.specB
		spec.extraLoss = rng.Float64() * 12
		l := phy.NewLink(s.RNG("multilink/link"+string(rune('0'+i))), env, phy.LinkParams{
			Name:      "m" + string(rune('0'+i)),
			Obs:       s.Obs(),
			APPos:     multiAPPositions[i],
			Chan:      multiChannelPlan[i%len(multiChannelPlan)],
			Client:    mob,
			ShadowDB:  spec.shadowDB,
			ShadowT:   spec.shadowT,
			FadeGood:  spec.fadeGood,
			FadeBad:   spec.fadeBad,
			MIMOOrder: sc.MIMOOrder,
			ExtraLoss: spec.extraLoss,
		})
		l.SetFadeDepth(spec.fadeDepth)
		linkList = append(linkList, l)
	}
	linkList = linkList[:n]

	count := sc.PacketCount()
	traces := make([]*trace.Trace, n)
	aps := make([]*ap.AP, n)
	wires := make([]*netsim.Wire, n)
	enqs := make([]func(pkt.Packet), n)
	for i := range linkList {
		i := i
		traces[i] = trace.New(count, sc.Profile.Spacing)
		aps[i] = ap.New(s, ap.Config{Name: "m", Chan: linkList[i].Channel()},
			linkList[i], s.RNG("multilink/ap"+string(rune('0'+i))), ap.AlwaysListening{},
			func(p pkt.Packet, at sim.Time) { traces[i].RecordArrival(p.Seq, at) })
		wires[i] = netsim.NewWire(s, "mlan"+string(rune('0'+i)), lanLatency, lanJitter, 0)
		enqs[i] = aps[i].Enqueue
	}

	for seq := 0; seq < count; seq++ {
		seq := seq
		s.Schedule(sim.Time(seq)*sim.Time(sc.Profile.Spacing), func() {
			p := pkt.Packet{StreamID: 1, Seq: seq, Size: sc.Profile.PacketBytes, SentAt: s.Now()}
			for i := range aps {
				traces[i].RecordSent(seq, p.SentAt)
				wires[i].Send(p, enqs[i])
			}
		})
	}

	// Record RSSI ordering before running (call start).
	type ranked struct {
		rssi float64
		idx  int
	}
	order := make([]ranked, n)
	for i, l := range linkList {
		order[i] = ranked{l.RSSIdBm(0), i}
	}
	s.Run(sim.Time(sc.Duration + 2*sim.Second))

	// Sort traces by descending start RSSI (insertion sort; n ≤ 6).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && order[j].rssi > order[j-1].rssi; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]*trace.Trace, n)
	for i, r := range order {
		out[i] = traces[r.idx]
	}
	return out
}

// MergeK merges the first k traces (k-link replication).
func MergeK(traces []*trace.Trace, k int) *trace.Trace {
	if k < 1 {
		k = 1
	}
	if k > len(traces) {
		k = len(traces)
	}
	out := traces[0]
	for i := 1; i < k; i++ {
		out = trace.Merge(out, traces[i])
	}
	return out
}
