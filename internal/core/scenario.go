// Package core is the DiversiFi library proper: it wires the substrates
// (PHY, MAC, AP, client, wired network, middlebox) into runnable calls and
// implements every link-usage strategy the paper evaluates — stronger/
// better selection, Divert-style fine-grained selection, temporal
// replication, 2-NIC cross-link replication, and the single-NIC DiversiFi
// client with either a customized AP or a middlebox.
package core

import (
	"fmt"
	"repro/internal/sim/rng"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Impairment labels the challenging situations of the paper's measurement
// corpus (§4, Figure 6).
type Impairment int

const (
	ImpNone Impairment = iota
	ImpWeakLink
	ImpMobility
	ImpMicrowave
	ImpCongestion
)

func (i Impairment) String() string {
	switch i {
	case ImpNone:
		return "none"
	case ImpWeakLink:
		return "weak-link"
	case ImpMobility:
		return "mobility"
	case ImpMicrowave:
		return "microwave"
	case ImpCongestion:
		return "congestion"
	default:
		return fmt.Sprintf("Impairment(%d)", int(i))
	}
}

// AllImpairments lists the corpus categories in presentation order.
var AllImpairments = []Impairment{ImpNone, ImpWeakLink, ImpMobility, ImpMicrowave, ImpCongestion}

// linkSpec holds the randomized stochastic parameters of one AP↔client link.
type linkSpec struct {
	extraLoss float64
	shadowDB  float64
	shadowT   sim.Duration
	fadeGood  sim.Duration
	fadeBad   sim.Duration
	fadeDepth float64
}

// Scenario describes one simulated call's environment: the office geometry
// of §6.1 (two APs at diagonal corners of a 30 m × 15 m space), the client
// placement or trajectory, per-link stochastic parameters, and at most one
// named impairment.
type Scenario struct {
	Impairment Impairment
	Profile    traffic.Profile
	Duration   sim.Duration
	MIMOOrder  int
	Seed       int64

	apA, apB   phy.Position
	chA, chB   phy.Channel
	clientPos  phy.Position // static placement (ignored if mobile)
	mobile     bool
	specA      linkSpec
	specB      linkSpec
	congestA   bool // congestion on channel A
	congestB   bool
	congestHit float64 // collision probability during saturated periods
	congestBzy float64 // busy fraction during saturated periods
	ovenPos    phy.Position
	hasOven    bool

	// Pinned oven duty interval: when ovenDur > 0 the microwave runs over
	// exactly [ovenStart, ovenStart+ovenDur] instead of drawing the
	// interval from the "scenario/oven" stream in Build. The zero value
	// preserves the historical draw, so existing seeds replay bit-for-bit.
	ovenStart sim.Time
	ovenDur   sim.Duration

	// Mobility overrides: walkSpeed in m/s and walkPause between waypoint
	// legs. Zero values fall back to the §6.1 defaults (1.2 m/s, 2 s), so
	// scenarios generated before these knobs existed are unchanged.
	walkSpeed float64
	walkPause sim.Duration

	// Mid-call collapse (non-stationarity): lateShift dB lands at lateAt
	// on the weaker link (or the stronger one when lateOnStronger).
	lateShift      float64
	lateAt         sim.Duration
	lateOnStronger bool
}

// Office dimensions from §6.1.
const (
	officeW = 30.0
	officeH = 15.0
)

// RandomScenario draws a scenario of the given impairment class. rng is
// corpus-level randomness (placement, parameters); the per-call fading and
// interference draws come from the simulator seeded with Seed.
func RandomScenario(rng *rng.Stream, imp Impairment, profile traffic.Profile, seed int64) Scenario {
	return RandomScenarioSeverity(rng, imp, profile, seed, 1.0)
}

// RandomScenarioSeverity is RandomScenario with an impairment severity
// scale: 1.0 reproduces the §4 "wild" conditions, smaller values the
// milder §6 office deployment.
func RandomScenarioSeverity(rng *rng.Stream, imp Impairment, profile traffic.Profile, seed int64, severity float64) Scenario {
	sc := Scenario{
		Impairment: imp,
		Profile:    profile,
		Duration:   2 * sim.Minute,
		MIMOOrder:  1,
		Seed:       seed,
		apA:        phy.Position{X: 2, Y: 2},
		apB:        phy.Position{X: officeW - 2, Y: officeH - 2},
		chA:        phy.Chan1,
		chB:        phy.Chan11,
	}
	uni := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	dur := func(lo, hi float64) sim.Duration { return sim.FromSeconds(uni(lo, hi)) }

	sc.clientPos = phy.Position{X: uni(2, officeW-2), Y: uni(1, officeH-1)}
	baseSpec := func() linkSpec {
		return linkSpec{
			shadowDB:  uni(4, 6),
			shadowT:   dur(3, 10),
			fadeGood:  dur(15, 60),
			fadeBad:   dur(0.15, 0.6),
			fadeDepth: uni(15, 40),
		}
	}
	sc.specA = baseSpec()
	sc.specB = baseSpec()
	// Independent wall/obstruction attenuation per link.
	sc.specA.extraLoss = uni(0, 6)
	sc.specB.extraLoss = uni(0, 12)
	// Environments are non-stationary: with some probability a link
	// collapses partway through the call (door, crowd, re-parked cart).
	// The collapse usually hits the link that started out weaker:
	// marginal links live near fragile geometry. The occasionally-
	// collapsing strong link feeds `stronger`'s tail; the often-
	// collapsing weak link is the trap `better` walks into when the
	// strong link had an unlucky trial period. Target selection happens
	// in Build, where the realized call-start RSSI is known.
	if rng.Float64() < 0.3*severity {
		sc.lateShift = uni(12, 28) * severity
		sc.lateAt = dur(10, 90)
		sc.lateOnStronger = rng.Float64() < 0.1
	}

	switch imp {
	case ImpWeakLink:
		// Deep in the building: both links attenuated, fades become
		// fatal, and slow shadowing drifts shift link quality mid-call
		// (which is what defeats trial-period selection — §4.1).
		// Attenuation deep in a building is partly shared (same walls
		// around the client), so a weak spot degrades BOTH links — which
		// is why even cross-link replication cannot rescue every
		// weak-link call.
		shared := uni(4, 12) * severity
		sc.specA.extraLoss += shared + uni(4, 12)*severity
		sc.specB.extraLoss += shared + uni(6, 14)*severity
		sc.specA.fadeBad = dur(0.3, 1.2)
		sc.specB.fadeBad = dur(0.3, 1.2)
		sc.specA.shadowDB = uni(6, 9)
		sc.specB.shadowDB = uni(6, 9)
		sc.specA.shadowT = dur(10, 40)
		sc.specB.shadowT = dur(10, 40)
	case ImpMobility:
		sc.mobile = true
		sc.specA.shadowT = dur(0.5, 2)
		sc.specB.shadowT = dur(0.5, 2)
		sc.specA.shadowDB = uni(6, 9)
		sc.specB.shadowDB = uni(6, 9)
		sc.specA.extraLoss += uni(4, 12) * severity
		sc.specB.extraLoss += uni(4, 14) * severity
	case ImpMicrowave:
		sc.hasOven = true
		// The oven sits somewhere in the office (a kitchenette); clients
		// that happen to be nearby are wrecked on BOTH links, since both
		// are 2.4 GHz (the paper notes no 5 GHz links were available —
		// §4.4). Clients further away are unaffected.
		sc.ovenPos = phy.Position{X: uni(2, officeW-2), Y: uni(1, officeH-1)}
	case ImpCongestion:
		sc.congestA = true
		sc.congestB = rng.Float64() < 0.6 // sometimes both channels busy
		sc.congestHit = uni(0.52, 0.8) * severity
		sc.congestBzy = uni(0.52, 0.82) * severity
	}
	return sc
}

// ControlledScenario builds a deterministic lab scenario: fixed geometry,
// no shadowing, negligible fading, and explicit per-link attenuation. Used
// by the Table 3 delay measurements, the middlebox scaling experiment, and
// tests that need a link of known quality.
func ControlledScenario(seed int64, profile traffic.Profile, duration sim.Duration, extraA, extraB float64) Scenario {
	return Scenario{
		Impairment: ImpNone,
		Profile:    profile,
		Duration:   duration,
		MIMOOrder:  1,
		Seed:       seed,
		apA:        phy.Position{X: 2, Y: 2},
		apB:        phy.Position{X: officeW - 2, Y: officeH - 2},
		chA:        phy.Chan1,
		chB:        phy.Chan11,
		clientPos:  phy.Position{X: officeW / 2, Y: officeH / 2},
		specA: linkSpec{
			extraLoss: extraA,
			fadeGood:  1000 * sim.Minute, fadeBad: sim.Millisecond,
		},
		specB: linkSpec{
			extraLoss: extraB,
			fadeGood:  1000 * sim.Minute, fadeBad: sim.Millisecond,
		},
	}
}

// WithFading returns a copy of the scenario with explicit Gilbert–Elliott
// fading on link A (onA) or link B. Used to make a *strong* link lossy —
// attenuation cannot do that, because a low-RSSI link would never be
// chosen as the primary.
func (sc Scenario) WithFading(onA bool, good, bad sim.Duration, depthDB float64) Scenario {
	spec := &sc.specB
	if onA {
		spec = &sc.specA
	}
	spec.fadeGood = good
	spec.fadeBad = bad
	spec.fadeDepth = depthDB
	return sc
}

// WithMIMO returns a copy of the scenario with the given spatial diversity
// order on both links (Figure 2d).
func (sc Scenario) WithMIMO(order int) Scenario {
	sc.MIMOOrder = order
	return sc
}

// WithProfile returns a copy of the scenario carrying a different stream
// profile (Figure 2e's 5 Mbps workload).
func (sc Scenario) WithProfile(p traffic.Profile) Scenario {
	sc.Profile = p
	return sc
}

// WithDuration returns a copy with a different call length.
func (sc Scenario) WithDuration(d sim.Duration) Scenario {
	sc.Duration = d
	return sc
}

// Links is the built radio environment for one call.
type Links struct {
	A, B *phy.Link
	Env  *phy.Environment
	// Mob is the client's mobility model, shared by any additional links
	// built on top of this environment (RunMultiCall).
	Mob phy.MobilityModel
}

// Build instantiates the scenario's links and interference sources on the
// simulator. Each link draws from its own named RNG stream so the loss
// processes are independent except through shared interference.
func (sc Scenario) Build(s *sim.Simulator) Links {
	env := phy.NewEnvironment()
	if sc.hasOven {
		start, dur := sc.ovenStart, sc.ovenDur
		if dur <= 0 {
			// The oven runs for a 30–80 s stretch of the call.
			rng := s.RNG("scenario/oven")
			start = sim.Time(sim.FromSeconds(5 + rng.Float64()*30))
			dur = sim.FromSeconds(30 + rng.Float64()*50)
		}
		env.AddInterferer(phy.NewMicrowave(sc.ovenPos, start, dur))
	}
	if sc.congestA {
		env.AddInterferer(phy.NewCongestion(s.RNG("scenario/congA"), sc.chA, sc.congestBzy, sc.congestHit, 0, 0))
	}
	if sc.congestB {
		env.AddInterferer(phy.NewCongestion(s.RNG("scenario/congB"), sc.chB, sc.congestBzy, sc.congestHit, 0, 0))
	}

	var mob phy.MobilityModel
	if sc.mobile {
		speed := sc.walkSpeed
		if speed <= 0 {
			speed = 1.2
		}
		pause := sc.walkPause
		if pause <= 0 {
			pause = 2 * sim.Second
		}
		mob = phy.NewRandomWaypoint(s.RNG("scenario/walk"), 1, 1, officeW-1, officeH-1,
			speed, pause, sc.Duration+10*sim.Second)
	} else {
		mob = phy.Static{Pos: sc.clientPos}
	}

	mk := func(name string, apPos phy.Position, ch phy.Channel, spec linkSpec) *phy.Link {
		l := phy.NewLink(s.RNG("link/"+name), env, phy.LinkParams{
			Name:      name,
			Obs:       s.Obs(),
			APPos:     apPos,
			Chan:      ch,
			Client:    mob,
			ShadowDB:  spec.shadowDB,
			ShadowT:   spec.shadowT,
			FadeGood:  spec.fadeGood,
			FadeBad:   spec.fadeBad,
			MIMOOrder: sc.MIMOOrder,
			ExtraLoss: spec.extraLoss,
		})
		l.SetFadeDepth(spec.fadeDepth)
		return l
	}
	links := Links{
		A:   mk("A", sc.apA, sc.chA, sc.specA),
		B:   mk("B", sc.apB, sc.chB, sc.specB),
		Env: env,
		Mob: mob,
	}
	if sc.lateShift > 0 {
		weaker, stronger := links.A, links.B
		if links.A.RSSIdBm(0) >= links.B.RSSIdBm(0) {
			weaker, stronger = links.B, links.A
		}
		target := weaker
		if sc.lateOnStronger {
			target = stronger
		}
		target.SetLateShift(sc.lateShift, sim.Time(sc.lateAt))
	}
	return links
}

// PacketCount returns the number of packets in the scenario's call.
func (sc Scenario) PacketCount() int {
	if sc.Profile.Spacing <= 0 {
		return 0
	}
	return int(sc.Duration / sc.Profile.Spacing)
}
