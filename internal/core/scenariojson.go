package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// scenarioJSON is the exported mirror of Scenario for serialization: a
// scenario file pins down one call's environment exactly, so a run can be
// shared and re-executed bit-for-bit (together with the seed it embeds).
type scenarioJSON struct {
	Impairment string  `json:"impairment"`
	Profile    string  `json:"profile"`
	DurationS  float64 `json:"duration_s"`
	MIMOOrder  int     `json:"mimo_order"`
	Seed       int64   `json:"seed"`

	APA       [2]float64   `json:"ap_a"`
	APB       [2]float64   `json:"ap_b"`
	ChanA     [2]int       `json:"chan_a"` // band, number
	ChanB     [2]int       `json:"chan_b"`
	ClientPos [2]float64   `json:"client_pos"`
	Mobile    bool         `json:"mobile"`
	SpecA     linkSpecJSON `json:"link_a"`
	SpecB     linkSpecJSON `json:"link_b"`

	CongestA   bool       `json:"congest_a"`
	CongestB   bool       `json:"congest_b"`
	CongestHit float64    `json:"congest_hit"`
	CongestBzy float64    `json:"congest_busy"`
	HasOven    bool       `json:"has_oven"`
	OvenPos    [2]float64 `json:"oven_pos"`

	LateShift      float64 `json:"late_shift_db"`
	LateAtS        float64 `json:"late_at_s"`
	LateOnStronger bool    `json:"late_on_stronger"`
}

type linkSpecJSON struct {
	ExtraLossDB float64 `json:"extra_loss_db"`
	ShadowDB    float64 `json:"shadow_db"`
	ShadowTS    float64 `json:"shadow_decorr_s"`
	FadeGoodS   float64 `json:"fade_good_s"`
	FadeBadS    float64 `json:"fade_bad_s"`
	FadeDepthDB float64 `json:"fade_depth_db"`
}

func specToJSON(s linkSpec) linkSpecJSON {
	return linkSpecJSON{
		ExtraLossDB: s.extraLoss,
		ShadowDB:    s.shadowDB,
		ShadowTS:    s.shadowT.Seconds(),
		FadeGoodS:   s.fadeGood.Seconds(),
		FadeBadS:    s.fadeBad.Seconds(),
		FadeDepthDB: s.fadeDepth,
	}
}

func specFromJSON(j linkSpecJSON) linkSpec {
	return linkSpec{
		extraLoss: j.ExtraLossDB,
		shadowDB:  j.ShadowDB,
		shadowT:   sim.FromSeconds(j.ShadowTS),
		fadeGood:  sim.FromSeconds(j.FadeGoodS),
		fadeBad:   sim.FromSeconds(j.FadeBadS),
		fadeDepth: j.FadeDepthDB,
	}
}

var impairmentNames = map[string]Impairment{
	"none": ImpNone, "weak-link": ImpWeakLink, "mobility": ImpMobility,
	"microwave": ImpMicrowave, "congestion": ImpCongestion,
}

// MarshalJSON implements json.Marshaler.
func (sc Scenario) MarshalJSON() ([]byte, error) {
	j := scenarioJSON{
		Impairment:     sc.Impairment.String(),
		Profile:        sc.Profile.Name,
		DurationS:      sc.Duration.Seconds(),
		MIMOOrder:      sc.MIMOOrder,
		Seed:           sc.Seed,
		APA:            [2]float64{sc.apA.X, sc.apA.Y},
		APB:            [2]float64{sc.apB.X, sc.apB.Y},
		ChanA:          [2]int{int(sc.chA.Band), sc.chA.Number},
		ChanB:          [2]int{int(sc.chB.Band), sc.chB.Number},
		ClientPos:      [2]float64{sc.clientPos.X, sc.clientPos.Y},
		Mobile:         sc.mobile,
		SpecA:          specToJSON(sc.specA),
		SpecB:          specToJSON(sc.specB),
		CongestA:       sc.congestA,
		CongestB:       sc.congestB,
		CongestHit:     sc.congestHit,
		CongestBzy:     sc.congestBzy,
		HasOven:        sc.hasOven,
		OvenPos:        [2]float64{sc.ovenPos.X, sc.ovenPos.Y},
		LateShift:      sc.lateShift,
		LateAtS:        sc.lateAt.Seconds(),
		LateOnStronger: sc.lateOnStronger,
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (sc *Scenario) UnmarshalJSON(data []byte) error {
	var j scenarioJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	imp, ok := impairmentNames[j.Impairment]
	if !ok {
		return fmt.Errorf("core: unknown impairment %q", j.Impairment)
	}
	var prof traffic.Profile
	switch j.Profile {
	case traffic.G711.Name:
		prof = traffic.G711
	case traffic.HighRate.Name:
		prof = traffic.HighRate
	default:
		return fmt.Errorf("core: unknown profile %q", j.Profile)
	}
	*sc = Scenario{
		Impairment:     imp,
		Profile:        prof,
		Duration:       sim.FromSeconds(j.DurationS),
		MIMOOrder:      j.MIMOOrder,
		Seed:           j.Seed,
		apA:            phy.Position{X: j.APA[0], Y: j.APA[1]},
		apB:            phy.Position{X: j.APB[0], Y: j.APB[1]},
		chA:            phy.Channel{Band: phy.Band(j.ChanA[0]), Number: j.ChanA[1]},
		chB:            phy.Channel{Band: phy.Band(j.ChanB[0]), Number: j.ChanB[1]},
		clientPos:      phy.Position{X: j.ClientPos[0], Y: j.ClientPos[1]},
		mobile:         j.Mobile,
		specA:          specFromJSON(j.SpecA),
		specB:          specFromJSON(j.SpecB),
		congestA:       j.CongestA,
		congestB:       j.CongestB,
		congestHit:     j.CongestHit,
		congestBzy:     j.CongestBzy,
		hasOven:        j.HasOven,
		ovenPos:        phy.Position{X: j.OvenPos[0], Y: j.OvenPos[1]},
		lateShift:      j.LateShift,
		lateAt:         sim.FromSeconds(j.LateAtS),
		lateOnStronger: j.LateOnStronger,
	}
	if !sc.chA.Valid() || !sc.chB.Valid() {
		return fmt.Errorf("core: invalid channel in scenario")
	}
	return nil
}
