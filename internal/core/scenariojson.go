package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// scenarioJSON is the exported mirror of Scenario for serialization: a
// scenario file pins down one call's environment exactly, so a run can be
// shared and re-executed bit-for-bit (together with the seed it embeds).
// It is a thin encoding of ScenarioParams; durations travel as float
// seconds for readability, so very fine-grained durations (sub-microsecond
// fractions) are quantized by a round trip — use Params/FromParams where
// exactness matters.
type scenarioJSON struct {
	Impairment string  `json:"impairment"`
	Profile    string  `json:"profile"`
	DurationS  float64 `json:"duration_s"`
	MIMOOrder  int     `json:"mimo_order"`
	Seed       int64   `json:"seed"`

	APA        [2]float64   `json:"ap_a"`
	APB        [2]float64   `json:"ap_b"`
	ChanA      [2]int       `json:"chan_a"` // band, number
	ChanB      [2]int       `json:"chan_b"`
	ClientPos  [2]float64   `json:"client_pos"`
	Mobile     bool         `json:"mobile"`
	WalkSpeed  float64      `json:"walk_speed_mps,omitempty"`
	WalkPauseS float64      `json:"walk_pause_s,omitempty"`
	SpecA      linkSpecJSON `json:"link_a"`
	SpecB      linkSpecJSON `json:"link_b"`

	CongestA   bool       `json:"congest_a"`
	CongestB   bool       `json:"congest_b"`
	CongestHit float64    `json:"congest_hit"`
	CongestBzy float64    `json:"congest_busy"`
	HasOven    bool       `json:"has_oven"`
	OvenPos    [2]float64 `json:"oven_pos"`
	OvenStartS float64    `json:"oven_start_s,omitempty"`
	OvenDurS   float64    `json:"oven_dur_s,omitempty"`

	LateShift      float64 `json:"late_shift_db"`
	LateAtS        float64 `json:"late_at_s"`
	LateOnStronger bool    `json:"late_on_stronger"`
}

type linkSpecJSON struct {
	ExtraLossDB float64 `json:"extra_loss_db"`
	ShadowDB    float64 `json:"shadow_db"`
	ShadowTS    float64 `json:"shadow_decorr_s"`
	FadeGoodS   float64 `json:"fade_good_s"`
	FadeBadS    float64 `json:"fade_bad_s"`
	FadeDepthDB float64 `json:"fade_depth_db"`
}

func specToJSON(l ScenarioLink) linkSpecJSON {
	return linkSpecJSON{
		ExtraLossDB: l.ExtraLossDB,
		ShadowDB:    l.ShadowDB,
		ShadowTS:    l.ShadowDecorr.Seconds(),
		FadeGoodS:   l.FadeGood.Seconds(),
		FadeBadS:    l.FadeBad.Seconds(),
		FadeDepthDB: l.FadeDepthDB,
	}
}

func specFromJSON(j linkSpecJSON) ScenarioLink {
	return ScenarioLink{
		ExtraLossDB:  j.ExtraLossDB,
		ShadowDB:     j.ShadowDB,
		ShadowDecorr: sim.FromSeconds(j.ShadowTS),
		FadeGood:     sim.FromSeconds(j.FadeGoodS),
		FadeBad:      sim.FromSeconds(j.FadeBadS),
		FadeDepthDB:  j.FadeDepthDB,
	}
}

var impairmentNames = map[string]Impairment{
	"none": ImpNone, "weak-link": ImpWeakLink, "mobility": ImpMobility,
	"microwave": ImpMicrowave, "congestion": ImpCongestion,
}

// MarshalJSON implements json.Marshaler.
func (sc Scenario) MarshalJSON() ([]byte, error) {
	p := sc.Params()
	j := scenarioJSON{
		Impairment:     p.Impairment.String(),
		Profile:        p.Profile.Name,
		DurationS:      p.Duration.Seconds(),
		MIMOOrder:      p.MIMOOrder,
		Seed:           p.Seed,
		APA:            [2]float64{p.APA.X, p.APA.Y},
		APB:            [2]float64{p.APB.X, p.APB.Y},
		ChanA:          [2]int{int(p.ChanA.Band), p.ChanA.Number},
		ChanB:          [2]int{int(p.ChanB.Band), p.ChanB.Number},
		ClientPos:      [2]float64{p.ClientPos.X, p.ClientPos.Y},
		Mobile:         p.Mobile,
		WalkSpeed:      p.WalkSpeed,
		WalkPauseS:     p.WalkPause.Seconds(),
		SpecA:          specToJSON(p.LinkA),
		SpecB:          specToJSON(p.LinkB),
		CongestA:       p.CongestA,
		CongestB:       p.CongestB,
		CongestHit:     p.CongestHit,
		CongestBzy:     p.CongestBusy,
		HasOven:        p.Oven,
		OvenPos:        [2]float64{p.OvenPos.X, p.OvenPos.Y},
		OvenStartS:     p.OvenStart.Seconds(),
		OvenDurS:       p.OvenDur.Seconds(),
		LateShift:      p.LateShiftDB,
		LateAtS:        p.LateAt.Seconds(),
		LateOnStronger: p.LateOnStronger,
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (sc *Scenario) UnmarshalJSON(data []byte) error {
	var j scenarioJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	imp, ok := impairmentNames[j.Impairment]
	if !ok {
		return fmt.Errorf("core: unknown impairment %q", j.Impairment)
	}
	var prof traffic.Profile
	switch j.Profile {
	case traffic.G711.Name:
		prof = traffic.G711
	case traffic.HighRate.Name:
		prof = traffic.HighRate
	default:
		return fmt.Errorf("core: unknown profile %q", j.Profile)
	}
	p := ScenarioParams{
		Impairment:     imp,
		Profile:        prof,
		Duration:       sim.FromSeconds(j.DurationS),
		MIMOOrder:      j.MIMOOrder,
		Seed:           j.Seed,
		APA:            phy.Position{X: j.APA[0], Y: j.APA[1]},
		APB:            phy.Position{X: j.APB[0], Y: j.APB[1]},
		ChanA:          phy.Channel{Band: phy.Band(j.ChanA[0]), Number: j.ChanA[1]},
		ChanB:          phy.Channel{Band: phy.Band(j.ChanB[0]), Number: j.ChanB[1]},
		ClientPos:      phy.Position{X: j.ClientPos[0], Y: j.ClientPos[1]},
		Mobile:         j.Mobile,
		WalkSpeed:      j.WalkSpeed,
		WalkPause:      sim.FromSeconds(j.WalkPauseS),
		LinkA:          specFromJSON(j.SpecA),
		LinkB:          specFromJSON(j.SpecB),
		CongestA:       j.CongestA,
		CongestB:       j.CongestB,
		CongestHit:     j.CongestHit,
		CongestBusy:    j.CongestBzy,
		Oven:           j.HasOven,
		OvenPos:        phy.Position{X: j.OvenPos[0], Y: j.OvenPos[1]},
		OvenStart:      sim.Time(sim.FromSeconds(j.OvenStartS)),
		OvenDur:        sim.FromSeconds(j.OvenDurS),
		LateShiftDB:    j.LateShift,
		LateAt:         sim.FromSeconds(j.LateAtS),
		LateOnStronger: j.LateOnStronger,
	}
	if !p.ChanA.Valid() || !p.ChanB.Valid() {
		return fmt.Errorf("core: invalid channel in scenario")
	}
	*sc = FromParams(p)
	return nil
}
