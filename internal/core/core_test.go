package core

import (
	"encoding/json"
	"repro/internal/sim/rng"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func shortScenario(seed int64, extraA, extraB float64) Scenario {
	return ControlledScenario(seed, traffic.G711, 20*sim.Second, extraA, extraB)
}

func TestRunDualCallDeterministic(t *testing.T) {
	sc := shortScenario(1, 0, 5)
	a := RunDualCall(sc)
	b := RunDualCall(sc)
	if a.RSSIA != b.RSSIA || a.RSSIB != b.RSSIB {
		t.Fatal("RSSI differs between identical runs")
	}
	la := a.TraceA.LostWithDeadline(traffic.G711.Deadline)
	lb := b.TraceA.LostWithDeadline(traffic.G711.Deadline)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("loss pattern diverged at %d", i)
		}
	}
}

func TestRunDualCallCleanLinks(t *testing.T) {
	d := RunDualCall(shortScenario(2, 0, 0))
	for name, tr := range map[string]interface {
		LostWithDeadline(sim.Duration) []bool
	}{"A": d.TraceA, "B": d.TraceB} {
		lost := tr.LostWithDeadline(traffic.G711.Deadline)
		if r := stats.LossRate(lost); r > 0.01 {
			t.Errorf("clean link %s loss = %v", name, r)
		}
	}
}

func TestStrongerPicksHigherRSSI(t *testing.T) {
	// Link B attenuated 20 dB: A must be the stronger link.
	d := RunDualCall(shortScenario(3, 0, 20))
	if !d.StrongerIsA() {
		t.Fatalf("RSSI A %.1f vs B %.1f: stronger should be A", d.RSSIA, d.RSSIB)
	}
	if d.StrongerTrace() != d.TraceA || d.WeakerTrace() != d.TraceB {
		t.Fatal("trace accessors disagree with RSSI ordering")
	}
}

func TestCrossLinkNeverWorseThanEitherLink(t *testing.T) {
	rng := rng.New(4)
	for i := 0; i < 5; i++ {
		sc := RandomScenario(rng, ImpWeakLink, traffic.G711, int64(100+i)).WithDuration(30 * sim.Second)
		d := RunDualCall(sc)
		deadline := traffic.G711.Deadline
		merged := stats.LossRate(d.CrossLink().LostWithDeadline(deadline))
		lA := stats.LossRate(d.TraceA.LostWithDeadline(deadline))
		lB := stats.LossRate(d.TraceB.LostWithDeadline(deadline))
		if merged > lA+1e-9 || merged > lB+1e-9 {
			t.Fatalf("merged loss %v exceeds a member link (%v, %v)", merged, lA, lB)
		}
	}
}

func TestBetterFollowsTrialPeriod(t *testing.T) {
	// Secondary dead from the start: better must stick with the stronger
	// link after the trial.
	d := RunDualCall(shortScenario(5, 0, 55))
	better := d.Better(5 * sim.Second)
	lost := better.LostWithDeadline(traffic.G711.Deadline)
	if r := stats.LossRate(lost); r > 0.02 {
		t.Errorf("better picked the dead link: loss %v", r)
	}
}

func TestDivertSwitchesOnLoss(t *testing.T) {
	// Both links identical quality: Divert output should roughly match
	// either link's loss, and must produce a full-length trace.
	d := RunDualCall(shortScenario(6, 3, 3))
	out := d.Divert(1, 1)
	if out.Len() != d.TraceA.Len() {
		t.Fatalf("divert trace length %d", out.Len())
	}
	// On clean links Divert stays clean.
	if r := stats.LossRate(out.LostWithDeadline(traffic.G711.Deadline)); r > 0.02 {
		t.Errorf("divert loss on clean links = %v", r)
	}
}

func TestDivertParamValidation(t *testing.T) {
	d := RunDualCall(shortScenario(7, 0, 0))
	out := d.Divert(0, 0) // clamps to 1,1 rather than panicking
	if out.Len() != d.TraceA.Len() {
		t.Fatal("clamped divert broken")
	}
}

func TestRunTemporalImprovesOnBaseline(t *testing.T) {
	// A fading link: duplicating each packet 100 ms later must recover
	// some losses (the copies see different fade states).
	sc := ControlledScenario(8, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 600*sim.Millisecond, 150*sim.Millisecond, 60).
		WithFading(false, 600*sim.Millisecond, 150*sim.Millisecond, 60)
	repl, base := RunTemporal(sc, 100*sim.Millisecond)
	// Figure-2-style network-level accounting: the end-to-end one-way
	// budget (~150 ms) admits Δ=100 ms copies.
	deadline := 150 * sim.Millisecond
	lr := stats.LossRate(repl.LostWithDeadline(deadline))
	lb := stats.LossRate(base.LostWithDeadline(deadline))
	if lb == 0 {
		t.Skip("no baseline loss with this seed")
	}
	if lr >= lb {
		t.Errorf("temporal replication did not help: %v vs %v", lr, lb)
	}
}

func TestRunTemporalZeroDeltaBarelyHelpsBursts(t *testing.T) {
	// Back-to-back copies share the fade: improvement should be much
	// smaller than with a 100 ms offset.
	sc := ControlledScenario(9, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 600*sim.Millisecond, 200*sim.Millisecond, 60).
		WithFading(false, 600*sim.Millisecond, 200*sim.Millisecond, 60)
	deadline := 150 * sim.Millisecond
	repl0, base0 := RunTemporal(sc, 0)
	repl100, base100 := RunTemporal(sc, 100*sim.Millisecond)
	gain := func(repl, base float64) float64 {
		if base == 0 {
			return 0
		}
		return (base - repl) / base
	}
	g0 := gain(stats.LossRate(repl0.LostWithDeadline(deadline)), stats.LossRate(base0.LostWithDeadline(deadline)))
	g100 := gain(stats.LossRate(repl100.LostWithDeadline(deadline)), stats.LossRate(base100.LostWithDeadline(deadline)))
	if g100 <= g0 {
		t.Errorf("Δ=100ms gain %.2f not above Δ=0 gain %.2f", g100, g0)
	}
}

func TestRunDiversiFiCleanLinks(t *testing.T) {
	r := RunDiversiFi(shortScenario(10, 0, 0), DiversiFiOptions{Mode: ModeCustomAP})
	lost := r.Trace.LostWithDeadline(traffic.G711.Deadline)
	if rate := stats.LossRate(lost); rate > 0.01 {
		t.Errorf("clean-link DiversiFi loss = %v", rate)
	}
	if r.WastefulRate > 0.05 {
		t.Errorf("clean-link waste = %v", r.WastefulRate)
	}
}

func TestRunDiversiFiRecoversFadingPrimary(t *testing.T) {
	sc := ControlledScenario(11, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 1200*sim.Millisecond, 60*sim.Millisecond, 60)
	// Single-link baseline: the primary alone.
	dual := RunDualCall(sc)
	baseLoss := stats.LossRate(dual.StrongerTrace().LostWithDeadline(traffic.G711.Deadline))
	if baseLoss < 0.005 {
		t.Skip("fading produced no baseline loss with this seed")
	}
	r := RunDiversiFi(sc, DiversiFiOptions{Mode: ModeCustomAP})
	dLoss := stats.LossRate(r.Trace.LostWithDeadline(traffic.G711.Deadline))
	if dLoss > baseLoss/3 {
		t.Errorf("DiversiFi residual %v not ≪ baseline %v", dLoss, baseLoss)
	}
	if r.Client.Recovered == 0 {
		t.Error("no recoveries recorded")
	}
}

func TestRunDiversiFiMiddleboxMode(t *testing.T) {
	sc := ControlledScenario(12, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 1200*sim.Millisecond, 60*sim.Millisecond, 60)
	r := RunDiversiFi(sc, DiversiFiOptions{Mode: ModeMiddlebox})
	if r.Client.Recovered == 0 {
		t.Fatal("middlebox mode recovered nothing")
	}
	dLoss := stats.LossRate(r.Trace.LostWithDeadline(traffic.G711.Deadline))
	if dLoss > 0.02 {
		t.Errorf("middlebox-mode residual loss = %v", dLoss)
	}
	if len(r.RecoveryDelays) == 0 {
		t.Fatal("no recovery delays measured")
	}
	// Middlebox recoveries include the request round trip: slower than
	// the bare switch cost, still well under the 100 ms deadline.
	for _, d := range r.RecoveryDelays {
		if d > 100*sim.Millisecond {
			t.Errorf("recovery delay %v exceeds deadline", d)
		}
		if d < 2800*sim.Microsecond {
			t.Errorf("recovery delay %v below the physical switch cost", d)
		}
	}
}

func TestModeStockAPWastesMore(t *testing.T) {
	sc := ControlledScenario(13, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 900*sim.Millisecond, 80*sim.Millisecond, 60)
	custom := RunDiversiFi(sc, DiversiFiOptions{Mode: ModeCustomAP})
	stock := RunDiversiFi(sc, DiversiFiOptions{Mode: ModeStockAP})
	// The stock AP's deep tail-drop queue forces the client to sit
	// through a backlog: more wasted/duplicate transmissions.
	if stock.WastefulRate <= custom.WastefulRate {
		t.Errorf("stock AP waste %v not above custom AP %v",
			stock.WastefulRate, custom.WastefulRate)
	}
}

func TestRecoveryDelaysPlausible(t *testing.T) {
	sc := ControlledScenario(14, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 1500*sim.Millisecond, 30*sim.Millisecond, 60)
	r := RunDiversiFi(sc, DiversiFiOptions{Mode: ModeCustomAP})
	if len(r.RecoveryDelays) == 0 {
		t.Skip("no recoveries this seed")
	}
	for _, d := range r.RecoveryDelays {
		if d < 2800*sim.Microsecond || d > 50*sim.Millisecond {
			t.Errorf("AP recovery delay %v outside plausible range", d)
		}
	}
}

func TestTCPCoexistenceSmallImpact(t *testing.T) {
	sc := shortScenario(15, 0, 0).WithDuration(60 * sim.Second)
	with, without, absent := TCPCoexistence(sc)
	if absent < 0 || absent > 0.05 {
		t.Errorf("absent fraction = %v, want small", absent)
	}
	if with <= 0 || without <= 0 {
		t.Fatalf("throughputs %v / %v", with, without)
	}
	// DiversiFi on a clean call (keepalives only) costs at most a few
	// percent of TCP throughput.
	if with < without*0.85 {
		t.Errorf("TCP with DiversiFi %v ≪ without %v", with, without)
	}
}

func TestScenarioAccessors(t *testing.T) {
	sc := ControlledScenario(16, traffic.G711, 2*sim.Minute, 0, 0)
	if sc.PacketCount() != 6000 {
		t.Errorf("2-minute G.711 call = %d packets", sc.PacketCount())
	}
	hs := sc.WithProfile(traffic.HighRate)
	if hs.PacketCount() != 75000 {
		t.Errorf("2-minute 5 Mbps call = %d packets", hs.PacketCount())
	}
	if sc.WithMIMO(4).MIMOOrder != 4 {
		t.Error("WithMIMO ignored")
	}
	if sc.WithDuration(sim.Minute).PacketCount() != 3000 {
		t.Error("WithDuration ignored")
	}
}

func TestImpairmentStrings(t *testing.T) {
	want := map[Impairment]string{
		ImpNone: "none", ImpWeakLink: "weak-link", ImpMobility: "mobility",
		ImpMicrowave: "microwave", ImpCongestion: "congestion",
	}
	for imp, s := range want {
		if imp.String() != s {
			t.Errorf("%d.String() = %q", imp, imp.String())
		}
	}
	if ModeCustomAP.String() != "custom-ap" || ModeMiddlebox.String() != "middlebox" || ModeStockAP.String() != "stock-ap" {
		t.Error("mode strings wrong")
	}
}

func TestRandomScenarioCoversImpairments(t *testing.T) {
	rng := rng.New(17)
	for _, imp := range AllImpairments {
		sc := RandomScenario(rng, imp, traffic.G711, 500)
		if sc.Impairment != imp {
			t.Errorf("scenario has impairment %v, want %v", sc.Impairment, imp)
		}
		if sc.PacketCount() != 6000 {
			t.Errorf("%v scenario packet count %d", imp, sc.PacketCount())
		}
		// Build must succeed and produce two live links.
		s := sim.New(sc.Seed)
		links := sc.Build(s)
		if links.A == nil || links.B == nil || links.Env == nil {
			t.Fatalf("%v scenario build incomplete", imp)
		}
	}
}

func TestUplinkBaselineLosesOnFadingLink(t *testing.T) {
	sc := ControlledScenario(30, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 900*sim.Millisecond, 80*sim.Millisecond, 60)
	r := RunUplink(sc, false)
	lost := r.Trace.LostWithDeadline(traffic.G711.Deadline)
	if stats.LossRate(lost) < 0.005 {
		t.Skip("no uplink loss with this seed")
	}
	if r.Stats.RecoverySwitches != 0 || r.Stats.Retransmitted != 0 {
		t.Error("baseline uplink should never switch")
	}
}

func TestUplinkDiversiFiRecovers(t *testing.T) {
	sc := ControlledScenario(30, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 900*sim.Millisecond, 80*sim.Millisecond, 60)
	base := RunUplink(sc, false)
	div := RunUplink(sc, true)
	deadline := traffic.G711.Deadline
	baseLoss := stats.LossRate(base.Trace.LostWithDeadline(deadline))
	divLoss := stats.LossRate(div.Trace.LostWithDeadline(deadline))
	if baseLoss < 0.005 {
		t.Skip("no baseline loss with this seed")
	}
	if divLoss > baseLoss/2 {
		t.Errorf("uplink DiversiFi residual %v not well below baseline %v", divLoss, baseLoss)
	}
	if div.Stats.Recovered == 0 {
		t.Error("no uplink recoveries recorded")
	}
	// Recoveries must respect the deadline.
	tr := div.Trace
	for seq := 0; seq < tr.Len(); seq++ {
		if !tr.Arrived(seq) {
			continue
		}
		if tr.ArrivalTime(seq).Sub(sim.Time(seq)*sim.Time(traffic.G711.Spacing)) > traffic.G711.Deadline+sim.FromMillis(5) {
			t.Fatalf("uplink packet %d delivered past deadline", seq)
		}
	}
}

func TestUplinkCleanLink(t *testing.T) {
	sc := shortScenario(31, 0, 0)
	r := RunUplink(sc, true)
	lost := r.Trace.LostWithDeadline(traffic.G711.Deadline)
	if rate := stats.LossRate(lost); rate > 0.01 {
		t.Errorf("clean uplink loss = %v", rate)
	}
	if r.Stats.RecoverySwitches > r.Stats.PrimaryFailures {
		t.Error("more switches than failures")
	}
}

func TestFECRepairsIsolatedLoss(t *testing.T) {
	sc := ControlledScenario(40, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 1500*sim.Millisecond, 25*sim.Millisecond, 60).
		WithFading(false, 1500*sim.Millisecond, 25*sim.Millisecond, 60)
	r := RunFEC(sc, 4)
	deadline := 150 * sim.Millisecond
	rawLoss := stats.LossRate(r.Raw.LostWithDeadline(deadline))
	decLoss := stats.LossRate(r.Decoded.LostWithDeadline(deadline))
	if rawLoss < 0.002 {
		t.Skip("no raw loss with this seed")
	}
	if decLoss >= rawLoss {
		t.Errorf("FEC did not repair: %v vs %v", decLoss, rawLoss)
	}
	if r.Repaired == 0 {
		t.Error("no repairs recorded")
	}
	if want := sc.PacketCount() / 4; r.ParitySent != want {
		t.Errorf("parity count %d, want %d", r.ParitySent, want)
	}
}

func TestFECCannotRepairBursts(t *testing.T) {
	// Long bad states knock out whole blocks: with k=4 and 20 ms spacing,
	// a 200 ms outage kills 10 packets — multiple per block — and the
	// parity is useless. FEC's repair count must be a small fraction of
	// the losses.
	sc := ControlledScenario(41, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 800*sim.Millisecond, 250*sim.Millisecond, 60).
		WithFading(false, 800*sim.Millisecond, 250*sim.Millisecond, 60)
	r := RunFEC(sc, 4)
	lost := 0
	for _, l := range r.Raw.LostWithDeadline(150 * sim.Millisecond) {
		if l {
			lost++
		}
	}
	if lost < 50 {
		t.Skip("not enough burst loss with this seed")
	}
	if float64(r.Repaired) > 0.3*float64(lost) {
		t.Errorf("FEC repaired %d of %d burst losses; expected a small fraction", r.Repaired, lost)
	}
}

func TestFECParamClamp(t *testing.T) {
	sc := shortScenario(42, 0, 0)
	r := RunFEC(sc, 0) // clamps to k=2
	if r.ParitySent != sc.PacketCount()/2 {
		t.Errorf("clamped k produced %d parity packets", r.ParitySent)
	}
}

func TestMultiCallShapes(t *testing.T) {
	sc := shortScenario(43, 0, 5)
	traces := RunMultiCall(sc, 4)
	if len(traces) != 4 {
		t.Fatalf("got %d traces", len(traces))
	}
	for i, tr := range traces {
		if tr.Len() != sc.PacketCount() {
			t.Fatalf("trace %d has %d packets", i, tr.Len())
		}
	}
	// Clamping.
	if got := len(RunMultiCall(sc, 0)); got != 1 {
		t.Errorf("n=0 gave %d traces", got)
	}
	if got := len(RunMultiCall(sc, 99)); got != 6 {
		t.Errorf("n=99 gave %d traces", got)
	}
}

func TestMergeKClamps(t *testing.T) {
	sc := shortScenario(44, 0, 0)
	traces := RunMultiCall(sc, 3)
	if MergeK(traces, 0).Len() != traces[0].Len() {
		t.Error("MergeK(0) broken")
	}
	if MergeK(traces, 99).Len() != traces[0].Len() {
		t.Error("MergeK(overlong) broken")
	}
}

func TestLongCallSoak(t *testing.T) {
	// A 10-minute call through the full DiversiFi stack: exercises timer
	// churn, keepalives, and long-horizon fading without leaks or drift.
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	sc := ControlledScenario(50, traffic.G711, 10*sim.Minute, 0, 0).
		WithFading(true, 2*sim.Second, 100*sim.Millisecond, 60)
	r := RunDiversiFi(sc, DiversiFiOptions{Mode: ModeCustomAP})
	if r.Trace.Len() != 30000 {
		t.Fatalf("10-minute call = %d packets", r.Trace.Len())
	}
	lost := r.Trace.LostWithDeadline(traffic.G711.Deadline)
	if rate := stats.LossRate(lost); rate > 0.01 {
		t.Errorf("soak residual loss = %v", rate)
	}
	// Frequent recovery visits refresh the secondary association, so
	// explicit keepalives may legitimately never fire; the association
	// must have been visited many times one way or the other.
	if visits := r.Client.RecoverySwitches + r.Client.KeepaliveSwitches; visits < 20 {
		t.Errorf("only %d secondary visits over 10 minutes", visits)
	}
}

func TestFullAssociationDeliversQueueConfig(t *testing.T) {
	sc := ControlledScenario(60, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 1200*sim.Millisecond, 60*sim.Millisecond, 60)
	r := RunDiversiFi(sc, DiversiFiOptions{Mode: ModeCustomAP, FullAssociation: true})
	if r.AssociationDelay <= 0 {
		t.Fatal("no association delay recorded")
	}
	// Scan (2 × 20 ms dwell) + two handshakes: tens of milliseconds.
	if r.AssociationDelay < 40*sim.Millisecond || r.AssociationDelay > 300*sim.Millisecond {
		t.Errorf("association delay = %v", r.AssociationDelay)
	}
	// The queue config arrived via the IE: recovery must work as usual.
	if r.Client.Recovered == 0 {
		t.Fatal("no recoveries after IE-configured association")
	}
	dLoss := stats.LossRate(r.Trace.LostWithDeadline(traffic.G711.Deadline))
	if dLoss > 0.02 {
		t.Errorf("residual loss with full association = %v", dLoss)
	}
}

func TestFullAssociationMatchesDirectConfig(t *testing.T) {
	// With clean links the IE-configured run must behave like the
	// directly-configured one (same recovery machinery).
	sc := ControlledScenario(61, traffic.G711, 30*sim.Second, 0, 0).
		WithFading(true, 1500*sim.Millisecond, 30*sim.Millisecond, 60)
	direct := RunDiversiFi(sc, DiversiFiOptions{Mode: ModeCustomAP})
	viaIE := RunDiversiFi(sc, DiversiFiOptions{Mode: ModeCustomAP, FullAssociation: true})
	deadline := traffic.G711.Deadline
	dl := stats.LossRate(direct.Trace.LostWithDeadline(deadline))
	il := stats.LossRate(viaIE.Trace.LostWithDeadline(deadline))
	// Same machinery, slightly shifted timelines: both must be tiny.
	if dl > 0.02 || il > 0.02 {
		t.Errorf("residual losses direct=%v viaIE=%v", dl, il)
	}
	if viaIE.Client.Recovered == 0 {
		t.Error("IE-configured run recovered nothing")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	rng := rng.New(70)
	for _, imp := range AllImpairments {
		orig := RandomScenario(rng, imp, traffic.G711, 7000+int64(imp))
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("%v: marshal: %v", imp, err)
		}
		var back Scenario
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: unmarshal: %v", imp, err)
		}
		// The round-tripped scenario must reproduce the run exactly.
		a := RunDualCall(orig.WithDuration(20 * sim.Second))
		b := RunDualCall(back.WithDuration(20 * sim.Second))
		la := a.TraceA.LostWithDeadline(traffic.G711.Deadline)
		lb := b.TraceA.LostWithDeadline(traffic.G711.Deadline)
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%v: round-tripped scenario diverged at packet %d", imp, i)
			}
		}
	}
}

func TestScenarioJSONRejectsGarbage(t *testing.T) {
	var sc Scenario
	if err := json.Unmarshal([]byte(`{"impairment":"martian"}`), &sc); err == nil {
		t.Error("unknown impairment accepted")
	}
	if err := json.Unmarshal([]byte(`{"impairment":"none","profile":"nope"}`), &sc); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := json.Unmarshal([]byte(`{`), &sc); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := json.Unmarshal([]byte(`{"impairment":"none","profile":"G.711","chan_a":[0,99]}`), &sc); err == nil {
		t.Error("invalid channel accepted")
	}
}
