package core

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// lossyScenario is a controlled scenario with deep fading on both links so
// that a DiversiFi run exercises losses, recovery visits, and retrievals.
func lossyScenario(seed int64) Scenario {
	return ControlledScenario(seed, traffic.G711, 60*sim.Second, 0, 0).
		WithFading(true, 600*sim.Millisecond, 150*sim.Millisecond, 60).
		WithFading(false, 600*sim.Millisecond, 150*sim.Millisecond, 60)
}

// TestDiversiFiTraceContract runs a full DiversiFi call with tracing on and
// checks that every emitted line decodes against the documented schema
// (strict fields + per-type validation) and that the stack produced the
// event types the run must contain.
func TestDiversiFiTraceContract(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	reg.SetSink(obs.NewSink(&buf))
	sim.ObsProvider = func(seed int64) *obs.Registry { return reg }
	defer func() { sim.ObsProvider = nil }()

	res := RunDiversiFi(lossyScenario(8), DiversiFiOptions{Mode: ModeCustomAP})
	if err := reg.Sink().Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if res.Client.Recovered == 0 {
		t.Fatalf("scenario produced no recoveries; trace test needs a lossy run")
	}

	byType := map[string]int{}
	lines := 0
	scan := bufio.NewScanner(&buf)
	scan.Buffer(make([]byte, 1<<20), 1<<20)
	for scan.Scan() {
		lines++
		ev, err := obs.DecodeEvent(scan.Bytes())
		if err != nil {
			t.Fatalf("line %d: %v\n%s", lines, err, scan.Text())
		}
		if ev.TUS < 0 {
			t.Fatalf("line %d: negative timestamp %d", lines, ev.TUS)
		}
		byType[ev.Ev]++
	}
	if err := scan.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if lines == 0 {
		t.Fatal("no trace lines emitted")
	}
	// A lossy DiversiFi run must show the causal chain: transmissions,
	// losses after the retry chain, recovery switches, and retrievals.
	for _, want := range []string{obs.EvTx, obs.EvRetry, obs.EvLinkSwitch, obs.EvRetrieve} {
		if byType[want] == 0 {
			t.Errorf("trace contains no %q events (%d lines total: %v)", want, lines, byType)
		}
	}
	if byType[obs.EvRetrieve] != res.Client.Recovered {
		t.Errorf("retrieve events = %d, want %d (Client.Recovered)",
			byType[obs.EvRetrieve], res.Client.Recovered)
	}
	if n := byType[obs.EvLinkSwitch]; n < 2*(res.Client.RecoverySwitches+res.Client.KeepaliveSwitches) {
		t.Errorf("link-switch events = %d, want >= %d (2 per visit)",
			n, 2*(res.Client.RecoverySwitches+res.Client.KeepaliveSwitches))
	}

	// The metric side of the contract: the counters named in
	// docs/OBSERVABILITY.md must have been populated by the same run.
	snap := reg.Snapshot()
	for _, name := range []string{
		"sim.events_executed", "phy.tx_attempts", "mac.frames", "mac.attempts",
		"ap.enqueued", "ap.tx_delivered", "client.losses_detected", "client.recovered",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q is zero after a lossy run", name)
		}
	}
	for _, name := range []string{"mac.access_wait_us", "mac.frame_airtime_us", "client.recovery_delay_us"} {
		if snap.Histograms[name].Count == 0 {
			t.Errorf("histogram %q is empty after a lossy run", name)
		}
	}
}

// TestObservabilityDoesNotPerturbResults checks the zero-interference
// guarantee: attaching a registry (even a tracing one) must not change the
// simulation outcome, because instrumentation never draws from the RNG
// streams or mutates component state.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	base := RunDiversiFi(lossyScenario(21), DiversiFiOptions{Mode: ModeCustomAP})

	reg := obs.NewRegistry()
	var buf bytes.Buffer
	reg.SetSink(obs.NewSink(&buf))
	reg.SetSeries(obs.NewSeries(reg, 1_000_000))
	sim.ObsProvider = func(seed int64) *obs.Registry { return reg }
	defer func() { sim.ObsProvider = nil }()
	obsRun := RunDiversiFi(lossyScenario(21), DiversiFiOptions{Mode: ModeCustomAP})
	if reg.Series().Points() == 0 {
		t.Error("series collector captured no windows during the observed run")
	}

	if base.Client != obsRun.Client {
		t.Errorf("client stats differ: base %+v vs observed %+v", base.Client, obsRun.Client)
	}
	if base.Primary != obsRun.Primary || base.Secondary != obsRun.Secondary {
		t.Errorf("AP stats differ: base %+v/%+v vs observed %+v/%+v",
			base.Primary, base.Secondary, obsRun.Primary, obsRun.Secondary)
	}
	bl := base.Trace.LostWithDeadline(traffic.G711.Deadline)
	ol := obsRun.Trace.LostWithDeadline(traffic.G711.Deadline)
	for i := range bl {
		if bl[i] != ol[i] {
			t.Fatalf("per-packet outcome differs at seq %d", i)
		}
	}
}

// TestPlayoutMissAccounting checks that the obs-only playout-miss counter
// agrees with the trace-derived ground truth.
func TestPlayoutMissAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	sim.ObsProvider = func(seed int64) *obs.Registry { return reg }
	defer func() { sim.ObsProvider = nil }()

	res := RunDiversiFi(lossyScenario(8), DiversiFiOptions{Mode: ModeCustomAP})
	misses := 0
	for _, lost := range res.Trace.LostWithDeadline(traffic.G711.Deadline) {
		if lost {
			misses++
		}
	}
	got := reg.Snapshot().Counters["client.playout_misses"]
	if got == 0 || misses == 0 {
		t.Fatalf("expected a lossy run (counter=%d, trace misses=%d)", got, misses)
	}
	// The counter fires at the recovery deadline (Deadline after send); a
	// packet arriving later still shows as a miss in both views, so the two
	// counts must agree exactly.
	if int(got) != misses {
		t.Errorf("client.playout_misses = %d, trace says %d", got, misses)
	}
}
