package core

import (
	"repro/internal/ap"
	"repro/internal/assoc"
	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// LAN path parameters used by every deployment: sub-millisecond wired hops.
const (
	lanLatency = 500 * sim.Microsecond
	lanJitter  = 200 * sim.Microsecond
)

// DualCall is the result of a two-NIC run: the full stream received
// independently over both links, the raw material for every §4 strategy
// comparison (the paper's 458-call corpus has exactly this form).
type DualCall struct {
	Scenario       Scenario
	TraceA, TraceB *trace.Trace
	RSSIA, RSSIB   float64 // OS-visible RSSI at call start
	// RSSISeriesA/B sample each link's OS-visible RSSI once per second
	// over the call — the signal a handoff policy watches.
	RSSISeriesA, RSSISeriesB []float64
}

// StrongerIsA reports whether link A is the stronger (higher-RSSI) link.
func (d DualCall) StrongerIsA() bool { return d.RSSIA >= d.RSSIB }

// StrongerTrace returns the stronger link's trace, WeakerTrace the other.
func (d DualCall) StrongerTrace() *trace.Trace {
	if d.StrongerIsA() {
		return d.TraceA
	}
	return d.TraceB
}

// WeakerTrace returns the weaker link's trace.
func (d DualCall) WeakerTrace() *trace.Trace {
	if d.StrongerIsA() {
		return d.TraceB
	}
	return d.TraceA
}

// RunDualCall simulates one call received concurrently on both links with
// a dedicated NIC per link (stock tail-drop APs, client always listening).
func RunDualCall(sc Scenario) DualCall {
	s := sim.New(sc.Seed)
	links := sc.Build(s)
	count := sc.PacketCount()
	trA := trace.New(count, sc.Profile.Spacing)
	trB := trace.New(count, sc.Profile.Spacing)

	apA := ap.New(s, ap.Config{Name: "A", Chan: links.A.Channel()}, links.A, s.RNG("ap/A"),
		ap.AlwaysListening{}, func(p pkt.Packet, at sim.Time) { trA.RecordArrival(p.Seq, at) })
	apB := ap.New(s, ap.Config{Name: "B", Chan: links.B.Channel()}, links.B, s.RNG("ap/B"),
		ap.AlwaysListening{}, func(p pkt.Packet, at sim.Time) { trB.RecordArrival(p.Seq, at) })

	wireA := netsim.NewWire(s, "lanA", lanLatency, lanJitter, 0)
	wireB := netsim.NewWire(s, "lanB", lanLatency, lanJitter, 0)
	// Bind the delivery callbacks once; building a method value per packet
	// shows up in -benchmem at corpus scale.
	enqA, enqB := apA.Enqueue, apB.Enqueue
	src := traffic.NewSource(s, 1, sc.Profile, func(p pkt.Packet) {
		trA.RecordSent(p.Seq, p.SentAt)
		trB.RecordSent(p.Seq, p.SentAt)
		wireA.Send(p, enqA)
		wireB.Send(p, enqB)
	})

	res := DualCall{Scenario: sc, TraceA: trA, TraceB: trB}
	s.Schedule(0, func() {
		res.RSSIA = links.A.RSSIdBm(0)
		res.RSSIB = links.B.RSSIdBm(0)
		src.Start(count)
	})
	for sec := sim.Duration(0); sec < sc.Duration; sec += sim.Second {
		sec := sec
		s.Schedule(sim.Time(sec), func() {
			res.RSSISeriesA = append(res.RSSISeriesA, links.A.RSSIdBm(s.Now()))
			res.RSSISeriesB = append(res.RSSISeriesB, links.B.RSSIdBm(s.Now()))
		})
	}
	s.Run(sim.Time(sc.Duration + 2*sim.Second))
	return res
}

// DiversiFiMode selects where the secondary copy is buffered.
type DiversiFiMode int

const (
	// ModeCustomAP buffers at a minimally modified secondary AP
	// (head-drop PSM queue, settable depth) — §5.3.1.
	ModeCustomAP DiversiFiMode = iota
	// ModeMiddlebox buffers at a middlebox behind an SDN switch,
	// leaving both APs unmodified — §5.3.2.
	ModeMiddlebox
	// ModeStockAP is the inefficient "End-to-End" strawman: the secondary
	// AP keeps its stock deep tail-drop PSM buffer.
	ModeStockAP
)

func (m DiversiFiMode) String() string {
	switch m {
	case ModeCustomAP:
		return "custom-ap"
	case ModeMiddlebox:
		return "middlebox"
	case ModeStockAP:
		return "stock-ap"
	default:
		return "unknown"
	}
}

// DiversiFiOptions tunes a single-NIC DiversiFi run beyond the defaults.
type DiversiFiOptions struct {
	Mode DiversiFiMode
	// ClientConfig overrides Algorithm 1 constants; the Profile field is
	// set from the scenario.
	ClientConfig client.Config
	// SecondaryQueue overrides the secondary buffer depth (0 = profile's
	// APQueueLen, i.e. 5 for G.711).
	SecondaryQueue int
	// SecondaryPolicy overrides the queue policy for ModeCustomAP
	// ablations; ignored unless forceQueuePolicy.
	SecondaryPolicy  ap.QueuePolicy
	ForceQueuePolicy bool
	// MiddleboxLoad adds background streams to the middlebox (§6.4).
	MiddleboxLoad int
	// SecondaryHWBatch overrides the secondary AP's hardware commit batch
	// (0 = ap.DefaultHWBatch) — the knob behind the wasteful-duplication
	// mechanism of §5.3.1.
	SecondaryHWBatch int
	// FullAssociation runs the 802.11 management plane before the call:
	// the client scans both channels, associates a virtual adapter with
	// each AP, and delivers the queue configuration through the vendor IE
	// of the association request (§5.2.2, §5.3.1) instead of by fiat.
	FullAssociation bool
}

// DiversiFiResult is the outcome of a single-NIC DiversiFi call.
type DiversiFiResult struct {
	Scenario Scenario
	Mode     DiversiFiMode
	// AssociationDelay is the management-plane setup time when
	// FullAssociation was requested (scan dwells + handshakes).
	AssociationDelay sim.Duration
	Trace            *trace.Trace
	Client           client.Stats
	Primary          ap.Stats
	Secondary        ap.Stats
	PrimaryIsA       bool
	// RecoveryDelays holds switch-to-first-secondary-packet delays.
	RecoveryDelays []sim.Duration
	// Recoveries decomposes each RecoveryDelays entry into the paper's
	// detect / switch / retrieve components (same order).
	Recoveries []client.RecoveryEvent
	// WastefulRate is unnecessary secondary transmissions (client already
	// had the packet, or nobody was listening) over total stream packets.
	WastefulRate float64
	// Absences are the NIC's away-from-primary intervals (for TCP).
	Absences []client.Interval
}

// mbAdapter connects the client's SecondaryBuffer hook to a middlebox.
type mbAdapter struct {
	mb       *netsim.Middlebox
	streamID int
}

func (a mbAdapter) RequestFrom(firstSeq int) { a.mb.Start(a.streamID, firstSeq) }
func (a mbAdapter) Release()                 { a.mb.Stop(a.streamID) }

// RunDiversiFi simulates one single-NIC DiversiFi call. The stronger link
// (by RSSI at call start) becomes the primary, matching §6.1.
func RunDiversiFi(sc Scenario, opts DiversiFiOptions) DiversiFiResult {
	s := sim.New(sc.Seed)
	links := sc.Build(s)
	count := sc.PacketCount()

	// Pick primary by start-of-call RSSI, as the OS would.
	primaryIsA := links.A.RSSIdBm(0) >= links.B.RSSIdBm(0)
	primLink, secLink := links.A, links.B
	if !primaryIsA {
		primLink, secLink = links.B, links.A
	}

	qlen := sc.Profile.APQueueLen()
	if opts.SecondaryQueue > 0 {
		qlen = opts.SecondaryQueue
	}
	secPolicy := ap.HeadDrop
	secQueue := qlen
	switch {
	case opts.ForceQueuePolicy:
		secPolicy = opts.SecondaryPolicy
	case opts.Mode == ModeStockAP:
		secPolicy = ap.TailDrop
		secQueue = ap.DefaultTailDropDepth
	}

	cfg := opts.ClientConfig
	cfg.Profile = sc.Profile

	// The secondary feed depends on the mode; both closures capture secAP,
	// which is assigned below before any packet flows.
	var primAP, secAP *ap.AP
	var feedSecondary func(pkt.Packet)
	// secEnq is built once and captures secAP by reference (it is assigned
	// below, before any packet flows); per-packet closures would dominate
	// the wired path's allocation profile.
	secEnq := func(q pkt.Packet) { secAP.Enqueue(q) }
	if opts.Mode == ModeMiddlebox {
		mbCfg := netsim.DefaultMiddleboxConfig()
		mbCfg.BufferDepth = qlen
		mb := netsim.NewMiddlebox(s, mbCfg)
		mb.SetBackgroundLoad(opts.MiddleboxLoad)
		mbOut := netsim.NewWire(s, "mbToSec", lanLatency, lanJitter, 0)
		_ = mb.Register(1, netsim.PortFunc(func(p pkt.Packet) {
			mbOut.Send(p, secEnq)
		}))
		wireMB := netsim.NewWire(s, "lanMB", lanLatency, lanJitter, 0)
		mbRecv := mb.Receive
		feedSecondary = func(p pkt.Packet) { wireMB.Send(p, mbRecv) }
		cfg.Secondary = mbAdapter{mb: mb, streamID: 1}
	} else {
		wireSec := netsim.NewWire(s, "lanSec", lanLatency, lanJitter, 0)
		feedSecondary = func(p pkt.Packet) {
			wireSec.Send(p, secEnq)
		}
	}

	c := client.New(s, cfg)
	primAP = ap.New(s, ap.Config{Name: "prim", Chan: primLink.Channel(), Policy: ap.HeadDrop, MaxQueue: qlen},
		primLink, s.RNG("ap/prim"), c,
		func(p pkt.Packet, at sim.Time) { c.OnDelivery(primAP, p, at) })
	secAP = ap.New(s, ap.Config{Name: "sec", Chan: secLink.Channel(), Policy: secPolicy, MaxQueue: secQueue, HWBatch: opts.SecondaryHWBatch},
		secLink, s.RNG("ap/sec"), c,
		func(p pkt.Packet, at sim.Time) { c.OnDelivery(secAP, p, at) })
	c.BindAPs(primAP, secAP)

	wirePrim := netsim.NewWire(s, "lanPrim", lanLatency, lanJitter, 0)

	// The SDN switch (or source-side replication) fans the stream out.
	primEnq := primAP.Enqueue
	sw := netsim.NewSDNSwitch(nil)
	_ = sw.InstallRule(1,
		netsim.PortFunc(func(p pkt.Packet) { wirePrim.Send(p, primEnq) }),
		netsim.PortFunc(func(p pkt.Packet) { feedSecondary(p) }),
	)

	src := traffic.NewSource(s, 1, sc.Profile, func(p pkt.Packet) { sw.Receive(p) })
	startCall := func() {
		c.StartCall(count)
		src.Start(count)
	}
	var assocDelay sim.Duration
	if opts.FullAssociation {
		// The APs start with stock queue settings; the vendor IE in the
		// association request configures them, exercising the real
		// signalling path of §5.3.1.
		primAP.SetQueueConfig(ap.TailDrop, ap.DefaultTailDropDepth)
		secAP.SetQueueConfig(ap.TailDrop, ap.DefaultTailDropDepth)
		applyCfg := func(target *ap.AP) func(assoc.QueueConfig, bool) {
			return func(cfg assoc.QueueConfig, has bool) {
				if !has {
					return
				}
				policy := ap.TailDrop
				if cfg.HeadDrop {
					policy = ap.HeadDrop
				}
				target.SetQueueConfig(policy, int(cfg.MaxQueue))
			}
		}
		air := assoc.NewAir(s)
		rPrim := assoc.NewResponder("corp", assoc.MAC{2, 0, 0, 0, 0, 1}, primLink.Channel(), primLink)
		rPrim.OnAssociate = applyCfg(primAP)
		rSec := assoc.NewResponder("corp", assoc.MAC{2, 0, 0, 0, 0, 2}, secLink.Channel(), secLink)
		rSec.OnAssociate = applyCfg(secAP)
		air.AddResponder(rPrim)
		air.AddResponder(rSec)
		station := assoc.NewStation(s, air)
		wantCfg := &assoc.QueueConfig{HeadDrop: secPolicy == ap.HeadDrop, MaxQueue: uint16(secQueue)}
		primCfg := &assoc.QueueConfig{HeadDrop: true, MaxQueue: uint16(qlen)}
		s.Schedule(0, func() {
			station.Scan([]phy.Channel{primLink.Channel(), secLink.Channel()}, 20*sim.Millisecond,
				func([]assoc.ScanResult) {
					station.Associate(assoc.MAC{6, 0, 0, 0, 0, 1}, rPrim.BSSID,
						assoc.AssocOptions{QueueCfg: primCfg}, func(bool) {
							station.Associate(assoc.MAC{6, 0, 0, 0, 0, 2}, rSec.BSSID,
								assoc.AssocOptions{QueueCfg: wantCfg}, func(bool) {
									assocDelay = sim.Duration(s.Now())
									startCall()
								})
						})
				})
		})
	} else {
		s.Schedule(0, startCall)
	}
	s.Run(sim.Time(assocDelay) + sim.Time(sc.Duration+2*sim.Second))

	cs := c.Stats()
	res := DiversiFiResult{
		AssociationDelay: assocDelay,
		Scenario:         sc,
		Mode:             opts.Mode,
		Trace:            c.Trace(),
		Client:           cs,
		Primary:          primAP.Stats(),
		Secondary:        secAP.Stats(),
		PrimaryIsA:       primaryIsA,
		RecoveryDelays:   c.RecoveryDelays(),
		Recoveries:       c.RecoveryEvents(),
		Absences:         c.Absences(),
	}
	wasted := res.Secondary.WastedTransmissions + cs.DuplicatesReceived
	if count > 0 {
		res.WastefulRate = float64(wasted) / float64(count)
	}
	return res
}

// RunTemporal simulates temporal replication (§4.2): two copies of each
// packet sent over the stronger link, the second delayed by delta. The
// returned traces are (replicated, baselineFirstCopyOnly).
func RunTemporal(sc Scenario, delta sim.Duration) (*trace.Trace, *trace.Trace) {
	s := sim.New(sc.Seed)
	links := sc.Build(s)
	link := links.A
	if links.B.RSSIdBm(0) > links.A.RSSIdBm(0) {
		link = links.B
	}
	count := sc.PacketCount()
	repl := trace.New(count, sc.Profile.Spacing)
	base := trace.New(count, sc.Profile.Spacing)

	const copyStream = 2
	a := ap.New(s, ap.Config{Name: "T", Chan: link.Channel()}, link, s.RNG("ap/T"),
		ap.AlwaysListening{}, func(p pkt.Packet, at sim.Time) {
			repl.RecordArrival(p.Seq, at)
			if p.StreamID != copyStream {
				base.RecordArrival(p.Seq, at)
			}
		})
	wire := netsim.NewWire(s, "lanT", lanLatency, lanJitter, 0)
	enq := a.Enqueue
	src := traffic.NewSource(s, 1, sc.Profile, func(p pkt.Packet) {
		repl.RecordSent(p.Seq, p.SentAt)
		base.RecordSent(p.Seq, p.SentAt)
		wire.Send(p, enq)
		cp := p
		cp.StreamID = copyStream
		s.After(delta, func() { wire.Send(cp, enq) })
	})
	s.Schedule(0, func() { src.Start(count) })
	s.Run(sim.Time(sc.Duration + 2*sim.Second))
	return repl, base
}

// TCPCoexistence runs the §6.3 experiment for one scenario: a DiversiFi
// VoIP call plus an iperf-style TCP flow on the DEF (primary) link, versus
// the same TCP flow with DiversiFi turned off. It returns the two
// throughputs in kbit/s plus the fraction of the call the NIC spent away
// from the DEF channel (the noise-free cost driver).
func TCPCoexistence(sc Scenario) (withKbps, withoutKbps, absentFrac float64) {
	res := RunDiversiFi(sc, DiversiFiOptions{Mode: ModeCustomAP})

	// Rebuild the same radio environment to query the DEF link's quality
	// over the call; the TCP model is fluid, so only link state matters.
	s := sim.New(sc.Seed)
	links := sc.Build(s)
	def := links.A
	if !res.PrimaryIsA {
		def = links.B
	}
	from, to := sim.Time(0), sim.Time(sc.Duration)
	cfg := traffic.DefaultTCPConfig()

	absent := func(a, b sim.Time) sim.Duration {
		var total sim.Duration
		for _, iv := range res.Absences {
			lo, hi := iv.From, iv.To
			if lo < a {
				lo = a
			}
			if hi > b {
				hi = b
			}
			if hi > lo {
				total += hi.Sub(lo)
			}
		}
		return total
	}
	withKbps = traffic.TCPThroughputKbps(def, from, to, cfg, absent, s.RNG("tcp/with"))
	withoutKbps = traffic.TCPThroughputKbps(def, from, to, cfg, nil, s.RNG("tcp/without"))
	absentFrac = float64(absent(from, to)) / float64(to.Sub(from))
	return withKbps, withoutKbps, absentFrac
}

// RunPriorityCall simulates a single-link call (stronger link) with the
// stream transmitted either as best-effort (voice=false, plain DCF) or as
// 802.11e/EDCA voice class (voice=true). Used by the EDCA experiment to
// test the paper's §2 claim that prioritization addresses congestion but
// not wireless loss.
func RunPriorityCall(sc Scenario, voice bool) *trace.Trace {
	s := sim.New(sc.Seed)
	links := sc.Build(s)
	link := links.A
	if links.B.RSSIdBm(0) > links.A.RSSIdBm(0) {
		link = links.B
	}
	count := sc.PacketCount()
	tr := trace.New(count, sc.Profile.Spacing)
	a := ap.New(s, ap.Config{Name: "prio", Chan: link.Channel(), Voice: voice},
		link, s.RNG("ap/prio"), ap.AlwaysListening{},
		func(p pkt.Packet, at sim.Time) { tr.RecordArrival(p.Seq, at) })
	wire := netsim.NewWire(s, "prioLan", lanLatency, lanJitter, 0)
	enq := a.Enqueue
	src := traffic.NewSource(s, 1, sc.Profile, func(p pkt.Packet) {
		tr.RecordSent(p.Seq, p.SentAt)
		wire.Send(p, enq)
	})
	s.Schedule(0, func() { src.Start(count) })
	s.Run(sim.Time(sc.Duration + 2*sim.Second))
	return tr
}
