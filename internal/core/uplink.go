package core

import (
	"repro/internal/mac"
	"repro/internal/netsim"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The paper focuses on the downlink and argues (§5) that the uplink "would
// likely be easier to implement because the client would have direct
// control over what packets are sent over which link and when". This file
// implements that direction as an extension: the client transmits the
// real-time stream toward a wired peer, learns from the MAC whether each
// frame was delivered (no ACK after the retry chain = known loss), and —
// with DiversiFi enabled — immediately hops to the secondary link to
// retransmit exactly the failed packets, then hops back.

// UplinkStats counts uplink-client events.
type UplinkStats struct {
	Transmitted      int // MAC transmit chains on the primary
	PrimaryFailures  int // chains that exhausted their retries
	RecoverySwitches int // hops to the secondary
	Retransmitted    int // packets retransmitted over the secondary
	Recovered        int // retransmissions that got through in time
	QueueDrops       int // packets dropped from the client's own queue
}

// UplinkResult is one uplink call.
type UplinkResult struct {
	Scenario   Scenario
	Trace      *trace.Trace // as seen by the wired peer
	Stats      UplinkStats
	PrimaryIsA bool
}

// uplinkClient is the transmit-side state machine.
type uplinkClient struct {
	s        *sim.Simulator
	sc       Scenario
	txPrim   *mac.Transmitter
	txSec    *mac.Transmitter
	wire     *netsim.Wire
	tr       *trace.Trace
	divers   bool
	stats    UplinkStats
	queue    []pkt.Packet
	sending  bool
	maxQueue int
	onWire   func(pkt.Packet) // prebuilt arrival recorder for wire.Send
}

// RunUplink simulates one uplink call. With diversifi=false the client
// uses only the stronger link; with true, failed packets are retransmitted
// over the secondary within the deadline budget.
func RunUplink(sc Scenario, diversifi bool) UplinkResult {
	s := sim.New(sc.Seed)
	links := sc.Build(s)
	primaryIsA := links.A.RSSIdBm(0) >= links.B.RSSIdBm(0)
	primLink, secLink := links.A, links.B
	if !primaryIsA {
		primLink, secLink = links.B, links.A
	}
	count := sc.PacketCount()
	txPrim := mac.NewTransmitter(primLink, s.RNG("uptx/prim"))
	txPrim.SetObs(s.Obs(), "up/prim")
	txSec := mac.NewTransmitter(secLink, s.RNG("uptx/sec"))
	txSec.SetObs(s.Obs(), "up/sec")
	c := &uplinkClient{
		s:        s,
		sc:       sc,
		txPrim:   txPrim,
		txSec:    txSec,
		wire:     netsim.NewWire(s, "uplan", lanLatency, lanJitter, 0),
		tr:       trace.New(count, sc.Profile.Spacing),
		divers:   diversifi,
		maxQueue: 4 * sc.Profile.APQueueLen(),
	}
	c.onWire = func(q pkt.Packet) { c.tr.RecordArrival(q.Seq, q.Arrived) }

	// The application hands the client a packet every Spacing.
	emit := func(seq int) {
		p := pkt.Packet{StreamID: 1, Seq: seq, Size: sc.Profile.PacketBytes, SentAt: s.Now()}
		c.tr.RecordSent(seq, p.SentAt)
		c.enqueue(p)
	}
	for seq := 0; seq < count; seq++ {
		seq := seq
		s.Schedule(sim.Time(seq)*sim.Time(sc.Profile.Spacing), func() { emit(seq) })
	}
	s.Run(sim.Time(sc.Duration + 2*sim.Second))

	return UplinkResult{Scenario: sc, Trace: c.tr, Stats: c.stats, PrimaryIsA: primaryIsA}
}

// enqueue adds a packet to the client's own transmit queue (head-drop:
// stale real-time packets are worthless).
func (c *uplinkClient) enqueue(p pkt.Packet) {
	if len(c.queue) >= c.maxQueue {
		c.queue = c.queue[1:]
		c.stats.QueueDrops++
	}
	c.queue = append(c.queue, p)
	c.kick()
}

// kick drains the transmit queue one packet at a time.
func (c *uplinkClient) kick() {
	if c.sending || len(c.queue) == 0 {
		return
	}
	c.sending = true
	p := c.queue[0]
	c.queue = c.queue[1:]
	out := c.txPrim.Transmit(c.s.Now(), p.Size)
	c.stats.Transmitted++
	c.s.Schedule(out.At, func() {
		if out.Delivered {
			c.deliver(p)
			c.sending = false
			c.kick()
			return
		}
		c.stats.PrimaryFailures++
		if !c.divers || c.pastDeadline(p, switchCostUplink()) {
			// Known loss; nothing to do (or no time left).
			c.sending = false
			c.kick()
			return
		}
		c.recoverOnSecondary(p)
	})
}

// recoverOnSecondary hops to the secondary, retransmits p (and keeps the
// link for immediately following packets while it is there — bursts fail
// together), then hops back.
func (c *uplinkClient) recoverOnSecondary(p pkt.Packet) {
	c.stats.RecoverySwitches++
	c.s.After(switchCostUplink(), func() {
		c.retransmit(p, func() {
			// Return to the primary before resuming the queue.
			c.s.After(switchCostUplink(), func() {
				c.sending = false
				c.kick()
			})
		})
	})
}

// retransmit sends p over the secondary; done runs afterwards.
func (c *uplinkClient) retransmit(p pkt.Packet, done func()) {
	if c.pastDeadline(p, 0) {
		done()
		return
	}
	c.stats.Retransmitted++
	out := c.txSec.Transmit(c.s.Now(), p.Size)
	c.s.Schedule(out.At, func() {
		if out.Delivered {
			c.stats.Recovered++
			c.deliver(p)
		}
		// While on the secondary, serve any queued packet whose primary
		// attempt would anyway start late — but keep it simple and fair:
		// only the failed packet is retried here; queued packets go back
		// through the primary path.
		done()
	})
}

// deliver forwards the packet over the wired LAN to the peer.
func (c *uplinkClient) deliver(p pkt.Packet) {
	c.wire.Send(p, c.onWire)
}

// pastDeadline reports whether p can no longer reach the peer in time,
// assuming extra cost before the next transmission could start.
func (c *uplinkClient) pastDeadline(p pkt.Packet, extra sim.Duration) bool {
	return c.s.Now().Add(extra) > p.SentAt.Add(c.sc.Profile.Deadline)
}

// switchCostUplink is the uplink link-switch cost: the same PSM signalling
// plus retune as the downlink client pays.
func switchCostUplink() sim.Duration {
	return mac.PSMSignalLatency + mac.ChannelSwitchLatency
}
