package core

import (
	"reflect"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/sim/rng"
	"repro/internal/traffic"
)

// TestParamsRoundTrip: FromParams(sc.Params()) must reproduce the scenario
// exactly for every corpus class — the scenario-v1 compiler depends on this
// being lossless (unlike the float-seconds JSON encoding).
func TestParamsRoundTrip(t *testing.T) {
	for _, imp := range AllImpairments {
		sc := RandomScenarioSeverity(rng.New(7), imp, traffic.G711, 99, 1.0)
		if got := FromParams(sc.Params()); !reflect.DeepEqual(got, sc) {
			t.Errorf("%s: FromParams(Params()) != original\n got %+v\nwant %+v", imp, got, sc)
		}
	}
	sc := ControlledScenario(5, traffic.HighRate, 3*sim.Second, 2, 9).
		WithFading(true, 400*sim.Millisecond, 600*sim.Millisecond, 40).
		WithMIMO(2)
	if got := FromParams(sc.Params()); !reflect.DeepEqual(got, sc) {
		t.Errorf("controlled: FromParams(Params()) != original")
	}
}

// TestParamsPinnedOvenAndWalk: the new generator knobs must reach Build —
// a pinned oven interval consumes no draws from the oven stream, and the
// walk overrides change the trajectory.
func TestParamsPinnedOvenAndWalk(t *testing.T) {
	p := ControlledScenario(1, traffic.G711, 2*sim.Second, 0, 6).Params()
	p.Oven = true
	p.OvenPos = phy.Position{X: 15, Y: 7}
	p.OvenStart = sim.Time(1 * sim.Second)
	p.OvenDur = 20 * sim.Second
	sc := FromParams(p)

	s := sim.New(1)
	links := sc.Build(s)
	if links.Env == nil {
		t.Fatal("Build returned no environment")
	}
	// The pinned interval must not touch the oven stream: its first draw
	// equals a fresh stream's first draw.
	if got, want := s.RNG("scenario/oven").Float64(), rng.Named(1, "scenario/oven").Float64(); got != want {
		t.Errorf("pinned oven consumed draws from the oven stream (%v != %v)", got, want)
	}

	wp := ControlledScenario(2, traffic.G711, 2*sim.Second, 0, 6).Params()
	wp.Mobile = true
	wp.WalkSpeed = 3.0
	wp.WalkPause = sim.Second
	fast := FromParams(wp)
	wp.WalkSpeed = 0.3
	slow := FromParams(wp)
	posAt := func(sc Scenario) phy.Position {
		s := sim.New(2)
		return sc.Build(s).Mob.PositionAt(sim.Time(10 * sim.Second))
	}
	if posAt(fast) == posAt(slow) {
		t.Errorf("walk speed override did not change the trajectory")
	}
}
