package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapNPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out := MapN(items, 8, func(x int) int { return x * x })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapNWorkerClamping(t *testing.T) {
	// More workers than items, zero workers, and negative workers must all
	// behave identically to a sane worker count.
	for _, workers := range []int{-3, 0, 1, 4, 1000} {
		out := MapN([]int{1, 2, 3}, workers, func(x int) int { return x + 1 })
		if len(out) != 3 || out[0] != 2 || out[1] != 3 || out[2] != 4 {
			t.Fatalf("workers=%d: got %v", workers, out)
		}
	}
}

func TestMapNBoundsConcurrency(t *testing.T) {
	const limit = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	items := make([]int, 64)
	MapN(items, limit, func(int) int {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		cur.Add(-1)
		return 0
	})
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent workers, limit %d", p, limit)
	}
}

func TestMapNEmptyInput(t *testing.T) {
	out := MapN(nil, 4, func(x int) int {
		t.Fatal("f called on empty input")
		return x
	})
	if len(out) != 0 {
		t.Fatalf("want empty output, got %v", out)
	}
}

func TestMapUsesAllItems(t *testing.T) {
	var calls atomic.Int32
	out := Map(make([]struct{}, 17), func(struct{}) int {
		calls.Add(1)
		return 1
	})
	if len(out) != 17 || calls.Load() != 17 {
		t.Fatalf("len=%d calls=%d, want 17/17", len(out), calls.Load())
	}
}
