// Package par provides the shared bounded worker pool used across the
// repository: the experiment corpus runner (internal/exp) maps simulator
// calls over scenario slices, and the campaign scheduler
// (internal/campaign) maps job executions over experiment fleets. Both
// need the same contract — results in input order, a bounded number of
// workers, and safe behaviour on empty input — so it lives here once.
package par

import (
	"runtime"
	"sync"
)

// Map runs f over every item using up to runtime.NumCPU() workers and
// returns the results in input order.
func Map[I, O any](items []I, f func(I) O) []O {
	return MapN(items, runtime.NumCPU(), f)
}

// MapN runs f over every item with at most workers concurrent goroutines.
// Results preserve input order: out[i] = f(items[i]). The worker count is
// clamped to [1, len(items)], so any value (including zero or negative)
// is safe. An empty input returns an empty slice without spawning any
// goroutine. f must be safe to call concurrently from multiple
// goroutines.
func MapN[I, O any](items []I, workers int, f func(I) O) []O {
	out := make([]O, len(items))
	if len(items) == 0 {
		return out
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i] = f(items[i])
			}
		}()
	}
	for i := range items {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return out
}
