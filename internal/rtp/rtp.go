// Package rtp implements the RFC 3550 RTP fixed header. DiversiFi
// identifies real-time streams and their profiles without application
// support by reading the RTP payload-type field (§5.2.1) and addresses
// packets for explicit middlebox selection by sequence number and
// timestamp (§5.2.5); this package provides the parsing and serialization
// both need.
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the RTP version this package speaks.
const Version = 2

// HeaderLen is the fixed header size without CSRCs.
const HeaderLen = 12

// Header is the RTP fixed header (RFC 3550 §5.1).
type Header struct {
	Padding     bool
	Extension   bool
	Marker      bool
	PayloadType uint8 // 7 bits
	Sequence    uint16
	Timestamp   uint32
	SSRC        uint32
	CSRC        []uint32 // up to 15 contributing sources
}

// Packet is a parsed RTP packet; Payload aliases the input buffer.
type Packet struct {
	Header
	Payload []byte
}

// Errors returned by Parse.
var (
	ErrTooShort   = errors.New("rtp: packet too short")
	ErrBadVersion = errors.New("rtp: unsupported version")
	ErrBadPadding = errors.New("rtp: invalid padding")
)

// Parse decodes an RTP packet. The payload slice aliases data.
func Parse(data []byte) (Packet, error) {
	if len(data) < HeaderLen {
		return Packet{}, ErrTooShort
	}
	v := data[0] >> 6
	if v != Version {
		return Packet{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	var p Packet
	p.Padding = data[0]&0x20 != 0
	p.Extension = data[0]&0x10 != 0
	cc := int(data[0] & 0x0f)
	p.Marker = data[1]&0x80 != 0
	p.PayloadType = data[1] & 0x7f
	p.Sequence = binary.BigEndian.Uint16(data[2:4])
	p.Timestamp = binary.BigEndian.Uint32(data[4:8])
	p.SSRC = binary.BigEndian.Uint32(data[8:12])

	off := HeaderLen + 4*cc
	if len(data) < off {
		return Packet{}, ErrTooShort
	}
	for i := 0; i < cc; i++ {
		p.CSRC = append(p.CSRC, binary.BigEndian.Uint32(data[HeaderLen+4*i:]))
	}
	if p.Extension {
		if len(data) < off+4 {
			return Packet{}, ErrTooShort
		}
		extLen := int(binary.BigEndian.Uint16(data[off+2:off+4])) * 4
		off += 4 + extLen
		if len(data) < off {
			return Packet{}, ErrTooShort
		}
	}
	payload := data[off:]
	if p.Padding {
		if len(payload) == 0 {
			return Packet{}, ErrBadPadding
		}
		pad := int(payload[len(payload)-1])
		if pad == 0 || pad > len(payload) {
			return Packet{}, ErrBadPadding
		}
		payload = payload[:len(payload)-pad]
	}
	p.Payload = payload
	return p, nil
}

// Marshal serializes the packet (without extension support; Extension is
// cleared). buf is reused when large enough.
func (p *Packet) Marshal(buf []byte) ([]byte, error) {
	if len(p.CSRC) > 15 {
		return nil, fmt.Errorf("rtp: %d CSRCs exceeds 15", len(p.CSRC))
	}
	if p.PayloadType > 0x7f {
		return nil, fmt.Errorf("rtp: payload type %d out of range", p.PayloadType)
	}
	need := HeaderLen + 4*len(p.CSRC) + len(p.Payload)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	b0 := byte(Version << 6)
	if p.Padding {
		// Padding is the receiver's concern; Marshal emits none and
		// clears the bit to keep the wire form self-consistent.
		b0 &^= 0x20
	}
	buf[0] = b0 | byte(len(p.CSRC))
	b1 := p.PayloadType
	if p.Marker {
		b1 |= 0x80
	}
	buf[1] = b1
	binary.BigEndian.PutUint16(buf[2:4], p.Sequence)
	binary.BigEndian.PutUint32(buf[4:8], p.Timestamp)
	binary.BigEndian.PutUint32(buf[8:12], p.SSRC)
	for i, c := range p.CSRC {
		binary.BigEndian.PutUint32(buf[HeaderLen+4*i:], c)
	}
	copy(buf[HeaderLen+4*len(p.CSRC):], p.Payload)
	return buf, nil
}

// SeqLess reports whether sequence a precedes b in RFC 3550's wrapping
// 16-bit sequence space.
func SeqLess(a, b uint16) bool {
	return a != b && b-a < 0x8000
}

// SeqDiff returns the forward distance from a to b in the wrapping
// sequence space (0 if equal; negative results are folded to the shorter
// backward distance as a negative count).
func SeqDiff(a, b uint16) int {
	d := int(b) - int(a)
	switch {
	case d > 0x7fff:
		d -= 0x10000
	case d < -0x8000:
		d += 0x10000
	}
	return d
}
