package rtp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	p := Packet{
		Header: Header{
			Marker: true, PayloadType: 0, Sequence: 4242,
			Timestamp: 160000, SSRC: 0xdeadbeef,
			CSRC: []uint32{1, 2, 3},
		},
		Payload: []byte("G.711 samples"),
	}
	wire, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadType != 0 || !got.Marker || got.Sequence != 4242 ||
		got.Timestamp != 160000 || got.SSRC != 0xdeadbeef {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	if len(got.CSRC) != 3 || got.CSRC[2] != 3 {
		t.Fatalf("CSRC mismatch: %v", got.CSRC)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pt uint8, seq uint16, ts, ssrc uint32, marker bool, payload []byte) bool {
		p := Packet{
			Header: Header{
				Marker: marker, PayloadType: pt & 0x7f,
				Sequence: seq, Timestamp: ts, SSRC: ssrc,
			},
			Payload: payload,
		}
		wire, err := p.Marshal(nil)
		if err != nil {
			return false
		}
		got, err := Parse(wire)
		if err != nil {
			return false
		}
		return got.PayloadType == pt&0x7f && got.Sequence == seq &&
			got.Timestamp == ts && got.SSRC == ssrc && got.Marker == marker &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejects(t *testing.T) {
	if _, err := Parse(make([]byte, 11)); err == nil {
		t.Error("short packet accepted")
	}
	bad := make([]byte, 12)
	bad[0] = 1 << 6 // version 1
	if _, err := Parse(bad); err == nil {
		t.Error("version 1 accepted")
	}
	// CSRC count pointing past the end.
	trunc := make([]byte, 12)
	trunc[0] = Version<<6 | 5
	if _, err := Parse(trunc); err == nil {
		t.Error("truncated CSRCs accepted")
	}
}

func TestParsePadding(t *testing.T) {
	p := Packet{Header: Header{PayloadType: 8, Sequence: 1}, Payload: []byte{1, 2, 3}}
	wire, _ := p.Marshal(nil)
	// Add 2 bytes of padding manually and set the P bit.
	wire = append(wire, 0, 2)
	wire[0] |= 0x20
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, []byte{1, 2, 3}) {
		t.Fatalf("padded payload = %v", got.Payload)
	}
	// Bogus padding length.
	wire[len(wire)-1] = 200
	if _, err := Parse(wire); err == nil {
		t.Error("bogus padding accepted")
	}
}

func TestParseExtension(t *testing.T) {
	p := Packet{Header: Header{PayloadType: 0, Sequence: 9}, Payload: []byte("xyz")}
	wire, _ := p.Marshal(nil)
	// Splice in a 4-byte extension header with one 32-bit word.
	ext := []byte{0xbe, 0xde, 0x00, 0x01, 1, 2, 3, 4}
	full := append(append(append([]byte{}, wire[:12]...), ext...), wire[12:]...)
	full[0] |= 0x10
	got, err := Parse(full)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, []byte("xyz")) {
		t.Fatalf("payload after extension = %q", got.Payload)
	}
	if !got.Extension {
		t.Error("extension flag lost")
	}
}

func TestMarshalValidation(t *testing.T) {
	p := Packet{Header: Header{CSRC: make([]uint32, 16)}}
	if _, err := p.Marshal(nil); err == nil {
		t.Error("16 CSRCs accepted")
	}
	q := Packet{Header: Header{PayloadType: 200}}
	if _, err := q.Marshal(nil); err == nil {
		t.Error("payload type 200 accepted")
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !SeqLess(1, 2) || SeqLess(2, 1) {
		t.Error("basic SeqLess broken")
	}
	if !SeqLess(65535, 0) {
		t.Error("wrap-around SeqLess broken")
	}
	if SeqLess(5, 5) {
		t.Error("equal SeqLess should be false")
	}
	if d := SeqDiff(65534, 2); d != 4 {
		t.Errorf("wrap diff = %d, want 4", d)
	}
	if d := SeqDiff(2, 65534); d != -4 {
		t.Errorf("backward diff = %d, want -4", d)
	}
	if d := SeqDiff(7, 7); d != 0 {
		t.Errorf("self diff = %d", d)
	}
}

func TestSeqDiffConsistencyProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		d := SeqDiff(a, b)
		if d > 0 && !SeqLess(a, b) {
			return false
		}
		if d < 0 && !SeqLess(b, a) {
			return false
		}
		// Advancing a by d lands on b (mod 2^16).
		return uint16(int(a)+d) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
