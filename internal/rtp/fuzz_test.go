package rtp

import (
	"bytes"
	"testing"
)

// FuzzParse exercises the decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to a packet that parses to
// the same header.
func FuzzParse(f *testing.F) {
	seed := Packet{Header: Header{PayloadType: 0, Sequence: 7, Timestamp: 1, SSRC: 2}, Payload: []byte("x")}
	wire, _ := seed.Marshal(nil)
	f.Add(wire)
	f.Add([]byte{})
	f.Add(make([]byte, 11))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// Round-trip (modulo extension and padding, which Marshal drops).
		if p.Extension || p.Padding {
			return
		}
		out, err := p.Marshal(nil)
		if err != nil {
			t.Fatalf("accepted packet failed to marshal: %v", err)
		}
		q, err := Parse(out)
		if err != nil {
			t.Fatalf("re-encoded packet failed to parse: %v", err)
		}
		if q.PayloadType != p.PayloadType || q.Sequence != p.Sequence ||
			q.Timestamp != p.Timestamp || q.SSRC != p.SSRC ||
			!bytes.Equal(q.Payload, p.Payload) {
			t.Fatal("round-trip mismatch")
		}
	})
}
