package nettest

import (
	"repro/internal/sim/rng"
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Counts = map[CallType]int{EW: 600, WW: 120, EWRelayed: 80, WWRelayed: 25}
	return cfg
}

func TestRunDeterministic(t *testing.T) {
	a := Run(rng.New(1), smallConfig())
	b := Run(rng.New(1), smallConfig())
	_, _, oa := a.PCRByType()
	_, _, ob := b.PCRByType()
	if oa != ob {
		t.Fatal("same seed produced different PCR")
	}
}

func TestCategoryOrdering(t *testing.T) {
	st := Run(rng.New(2), smallConfig())
	byType, counts, overall := st.PCRByType()
	for ct, want := range smallConfig().Counts {
		if counts[ct] != want {
			t.Errorf("%v count = %d, want %d", ct, counts[ct], want)
		}
	}
	// Table 2 orderings: WW > EW, relayed ≫ direct, WWR >= EWR.
	if byType[WW] <= byType[EW] {
		t.Errorf("WW %.3f not above EW %.3f", byType[WW], byType[EW])
	}
	if byType[EWRelayed] <= 3*byType[EW] {
		t.Errorf("relayed EW %.3f not ≫ direct %.3f", byType[EWRelayed], byType[EW])
	}
	// WWR should be at least comparable to EWR (with only ~25 relayed WW
	// calls in the small config, allow sampling noise).
	if byType[WWRelayed] < 0.7*byType[EWRelayed] {
		t.Errorf("WWR %.3f ≪ EWR %.3f", byType[WWRelayed], byType[EWRelayed])
	}
	if overall <= 0 || overall >= 0.5 {
		t.Errorf("overall PCR %.3f implausible", overall)
	}
}

func TestUserStats(t *testing.T) {
	st := Run(rng.New(3), smallConfig())
	anyPoor, over20 := st.UserStats()
	if anyPoor <= 0 || anyPoor > 1 {
		t.Errorf("anyPoor = %v", anyPoor)
	}
	if over20 < 0 || over20 > anyPoor {
		t.Errorf("over20 = %v vs anyPoor %v", over20, anyPoor)
	}
}

func TestRelayConcentration(t *testing.T) {
	st := Run(rng.New(4), smallConfig())
	// Relayed calls must land only on NAT-restricted clients.
	for _, r := range st.Results {
		if r.Type == EWRelayed || r.Type == WWRelayed {
			if !st.Clients[r.Client].NATRestricted {
				t.Fatal("relayed call on unrestricted client")
			}
		}
	}
}

func TestClientClasses(t *testing.T) {
	rng := rng.New(5)
	good, bad := 0, 0
	for i := 0; i < 5000; i++ {
		c := NewClient(rng, 22)
		if c.Country < 0 || c.Country >= 22 {
			t.Fatal("country out of range")
		}
		if c.pGoodLoss < 0.001 {
			good++
		}
		if c.pGoodLoss >= 0.003 {
			bad++
		}
	}
	if good < 3000 {
		t.Errorf("good-class share %d/5000, want majority", good)
	}
	if bad < 300 || bad > 1500 {
		t.Errorf("bad-class share %d/5000, want ~15%%", bad)
	}
}

func TestCallTypeStrings(t *testing.T) {
	want := map[CallType]string{EW: "EW", WW: "WW", EWRelayed: "EW-Relayed", WWRelayed: "WW-Relayed"}
	for ct, s := range want {
		if ct.String() != s {
			t.Errorf("%d.String() = %q", ct, ct.String())
		}
	}
}

func TestPaperCallCountsTotal(t *testing.T) {
	total := 0
	for _, n := range PaperCallCounts {
		total += n
	}
	if total != 9224 {
		t.Errorf("paper call counts sum to %d, want 9224", total)
	}
}
