// Package nettest reproduces the distributed measurement study of §3.2
// (Table 2): 274 WiFi-connected participants across 22 countries plus 10
// well-connected Azure nodes ran 9224 simulated VoIP calls (64 kbps, 20 ms
// spacing, 2 minutes), directly and through overloaded cloud relays. The
// substitute generates each call's packet-level loss/delay process from
// per-client WiFi quality classes, WAN path properties, and relay
// overload, then scores calls with the same G.711 quality model as the
// rest of the repository.
package nettest

import (
	"repro/internal/sim/rng"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/voip"
)

// CallType is a Table 2 category.
type CallType int

const (
	// EW: WiFi client ↔ well-connected Azure node, direct.
	EW CallType = iota
	// WW: WiFi client ↔ WiFi client, direct.
	WW
	// EWRelayed: client ↔ Azure through an overloaded relay.
	EWRelayed
	// WWRelayed: client ↔ client through an overloaded relay.
	WWRelayed
)

func (c CallType) String() string {
	switch c {
	case EW:
		return "EW"
	case WW:
		return "WW"
	case EWRelayed:
		return "EW-Relayed"
	case WWRelayed:
		return "WW-Relayed"
	default:
		return "?"
	}
}

// PaperCallCounts are the per-category call counts of Table 2.
var PaperCallCounts = map[CallType]int{
	EW:        6953,
	WW:        1240,
	EWRelayed: 798,
	WWRelayed: 233,
}

// Client is one NetTest participant: a WiFi-connected Windows machine in a
// (mostly residential) location.
type Client struct {
	Country int
	// NATRestricted clients cannot establish direct peer connections and
	// fall back to relays — which is why relay pain concentrates on a
	// subset of users rather than spreading uniformly.
	NATRestricted bool
	// WiFi loss process parameters: a Gilbert–Elliott chain at packet
	// granularity (20 ms steps).
	pGoodLoss float64 // per-packet loss probability in the good state
	pBadLoss  float64 // per-packet loss probability in the bad state
	pEnterBad float64 // per-packet probability of entering a bad episode
	pExitBad  float64 // per-packet probability of leaving it
	jitterMs  float64 // WiFi-side delay jitter scale
}

// NewClient draws a participant. Quality classes follow residential WiFi:
// most links are fine, a fraction are mediocre, a few are bad — which is
// what produces the paper's finding that 16.3% of users had PCR ≥ 20%.
func NewClient(rng *rng.Stream, countries int) Client {
	c := Client{Country: rng.Intn(countries), NATRestricted: rng.Float64() < 0.3}
	r := rng.Float64()
	switch {
	case r < 0.55: // good home WiFi: essentially clean
		c.pGoodLoss = 0.0001 + rng.Float64()*0.0004
		c.pBadLoss = 0.12
		c.pEnterBad = 0.00018
		c.pExitBad = 0.12
		c.jitterMs = 2
	case r < 0.85: // mediocre
		c.pGoodLoss = 0.0006 + rng.Float64()*0.002
		c.pBadLoss = 0.35
		c.pEnterBad = 0.002
		c.pExitBad = 0.05
		c.jitterMs = 4
	default: // bad corner of the house / interference
		c.pGoodLoss = 0.003 + rng.Float64()*0.01
		c.pBadLoss = 0.5
		c.pEnterBad = 0.0025
		c.pExitBad = 0.04
		c.jitterMs = 8
	}
	return c
}

// Config sizes the study.
type Config struct {
	Clients   int
	Azure     int
	Countries int
	Counts    map[CallType]int
	Relay     RelayModel
}

// RelayModel captures the overloaded relays of the study.
type RelayModel struct {
	LossMin, LossMax       float64 // uniform random per-call shed rate
	DelayMinMs, DelayMaxMs float64 // added one-way delay
}

// DefaultConfig mirrors the paper's deployment.
func DefaultConfig() Config {
	return Config{
		Clients:   274,
		Azure:     10,
		Countries: 22,
		Counts:    PaperCallCounts,
		Relay: RelayModel{
			LossMin: 0.001, LossMax: 0.07,
			DelayMinMs: 5, DelayMaxMs: 70,
		},
	}
}

// CallResult is one scored call.
type CallResult struct {
	Type   CallType
	Client int // index of the rated (receiving) client
	Q      voip.Quality
}

// Study is a completed NetTest run.
type Study struct {
	Clients []Client
	Results []CallResult
}

// Run executes the study.
func Run(rng *rng.Stream, cfg Config) *Study {
	st := &Study{}
	for i := 0; i < cfg.Clients; i++ {
		st.Clients = append(st.Clients, NewClient(rng, cfg.Countries))
	}
	var restricted []int
	for i, c := range st.Clients {
		if c.NATRestricted {
			restricted = append(restricted, i)
		}
	}
	for _, ct := range []CallType{EW, WW, EWRelayed, WWRelayed} {
		n := cfg.Counts[ct]
		for i := 0; i < n; i++ {
			var recv int
			if (ct == EWRelayed || ct == WWRelayed) && len(restricted) > 0 {
				recv = restricted[rng.Intn(len(restricted))]
			} else {
				recv = rng.Intn(cfg.Clients)
			}
			res := CallResult{Type: ct, Client: recv}
			res.Q = simulateCall(rng, cfg, st.Clients, ct, recv)
			st.Results = append(st.Results, res)
		}
	}
	return st
}

// simulateCall synthesizes the receiver-side packet trace of one 2-minute
// call and scores it.
func simulateCall(rng *rng.Stream, cfg Config, clients []Client, ct CallType, recv int) voip.Quality {
	prof := traffic.G711
	count := int((2 * sim.Minute) / prof.Spacing)
	tr := trace.New(count, prof.Spacing)

	// WAN path: base delay by country distance, small jitter and loss.
	wanBase := 10 + rng.Float64()*65 // ms
	wanLoss := rng.Float64() * 0.002
	relayLoss, relayDelay := 0.0, 0.0
	if ct == EWRelayed || ct == WWRelayed {
		relayLoss = cfg.Relay.LossMin + rng.Float64()*(cfg.Relay.LossMax-cfg.Relay.LossMin)
		relayDelay = cfg.Relay.DelayMinMs + rng.Float64()*(cfg.Relay.DelayMaxMs-cfg.Relay.DelayMinMs)
	}

	// WiFi legs: the receiver's downlink always; the sender's uplink when
	// the peer is also a WiFi client.
	legs := []Client{clients[recv]}
	scale := []float64{1}
	if ct == WW || ct == WWRelayed {
		// The peer's uplink leg contributes too, but uplink VoIP frames
		// are smaller/more robust and the sender sits near its AP more
		// often, so the second leg is discounted.
		legs = append(legs, clients[rng.Intn(len(clients))])
		scale = append(scale, 0.9)
	}
	bad := make([]bool, len(legs))

	for seq := 0; seq < count; seq++ {
		sent := sim.Time(seq) * sim.Time(prof.Spacing)
		tr.RecordSent(seq, sent)
		lost := false
		for li, leg := range legs {
			if bad[li] {
				if rng.Float64() < leg.pExitBad {
					bad[li] = false
				}
			} else if rng.Float64() < leg.pEnterBad*scale[li] {
				bad[li] = true
			}
			p := leg.pGoodLoss * scale[li]
			if bad[li] {
				p = leg.pBadLoss
			}
			if rng.Float64() < p {
				lost = true
			}
		}
		if !lost && wanLoss > 0 && rng.Float64() < wanLoss {
			lost = true
		}
		if !lost && relayLoss > 0 && rng.Float64() < relayLoss {
			lost = true
		}
		if lost {
			continue
		}
		delayMs := wanBase + relayDelay + rng.ExpFloat64()*clients[recv].jitterMs
		tr.RecordArrival(seq, sent.Add(sim.FromMillis(delayMs)))
	}
	return voip.Assess(tr, prof)
}

// PCRByType returns Table 2: per-category PCR plus the overall PCR.
func (st *Study) PCRByType() (byType map[CallType]float64, counts map[CallType]int, overall float64) {
	byType = map[CallType]float64{}
	counts = map[CallType]int{}
	poor := map[CallType]int{}
	totalPoor := 0
	for _, r := range st.Results {
		counts[r.Type]++
		if r.Q.Poor {
			poor[r.Type]++
			totalPoor++
		}
	}
	for ct, n := range counts {
		byType[ct] = float64(poor[ct]) / float64(n)
	}
	overall = float64(totalPoor) / float64(len(st.Results))
	return byType, counts, overall
}

// UserStats reports the §3.2 spatial distribution: the fraction of users
// with at least one poor call and the fraction with per-user PCR ≥ 20%.
func (st *Study) UserStats() (anyPoor, pcrOver20 float64) {
	calls := map[int]int{}
	poor := map[int]int{}
	for _, r := range st.Results {
		calls[r.Client]++
		if r.Q.Poor {
			poor[r.Client]++
		}
	}
	users := 0
	withPoor, over20 := 0, 0
	for u, n := range calls {
		users++
		if poor[u] > 0 {
			withPoor++
		}
		if float64(poor[u])/float64(n) >= 0.20 {
			over20++
		}
	}
	if users == 0 {
		return 0, 0
	}
	return float64(withPoor) / float64(users), float64(over20) / float64(users)
}
