// Package stattest is the statistical machinery behind the scenario
// acceptance harness: normal-theory confidence intervals, Wilson
// proportion intervals, Pearson correlation, and distribution-distance
// tests (Kolmogorov–Smirnov against analytic CDFs, with
// Dvoretzky–Kiefer–Wolfowitz bands). Every acceptance assertion in
// internal/scenario and internal/phy states its confidence level
// explicitly through these helpers, so a failing test names both the
// measured statistic and the bound it escaped.
//
// The package is pure math — no simulator imports — so physical-layer
// property tests (internal/phy) and scenario acceptance tests can share
// one set of bounds without import cycles.
package stattest

import (
	"fmt"
	"math"
	"sort"
)

// Z returns the two-sided standard-normal critical value for confidence
// level conf: Z(0.95) ≈ 1.96, Z(0.99) ≈ 2.576.
func Z(conf float64) float64 {
	if conf <= 0 || conf >= 1 {
		panic(fmt.Sprintf("stattest: confidence %g outside (0, 1)", conf))
	}
	return math.Sqrt2 * math.Erfinv(conf)
}

// Interval is a closed interval, usually a confidence interval.
type Interval struct{ Lo, Hi float64 }

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

func (iv Interval) String() string { return fmt.Sprintf("[%.4g, %.4g]", iv.Lo, iv.Hi) }

// Mean returns the sample mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// MeanCI returns the normal-theory confidence interval for the mean of xs
// at level conf. With the sample sizes the acceptance harness uses
// (n ≥ 30) the normal approximation to the t distribution is adequate.
func MeanCI(xs []float64, conf float64) Interval {
	m := Mean(xs)
	se := math.Sqrt(Variance(xs) / float64(len(xs)))
	h := Z(conf) * se
	return Interval{Lo: m - h, Hi: m + h}
}

// PropCI returns the Wilson score interval for a proportion: k successes
// in n trials at confidence conf. Unlike the Wald interval it behaves at
// the extremes (k near 0 or n), which loss-rate assertions hit routinely.
func PropCI(k, n int, conf float64) Interval {
	if n == 0 {
		return Interval{Lo: 0, Hi: 1}
	}
	z := Z(conf)
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	return Interval{Lo: center - half, Hi: center + half}
}

// Corr returns the Pearson correlation of the paired samples. It returns
// NaN when either margin is constant (correlation undefined) — callers
// decide whether a degenerate pair counts, e.g. a lossless link in a
// cross-link loss-correlation test.
func Corr(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// DKWEpsilon returns the Dvoretzky–Kiefer–Wolfowitz band half-width: with
// probability ≥ 1−alpha, the empirical CDF of n i.i.d. samples stays
// within ε of the true CDF uniformly. A KSDistance above this rejects the
// hypothesized distribution at level alpha.
func DKWEpsilon(n int, alpha float64) float64 {
	if n <= 0 || alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stattest: DKWEpsilon(%d, %g)", n, alpha))
	}
	return math.Sqrt(math.Log(2/alpha) / (2 * float64(n)))
}

// KSDistance returns the Kolmogorov–Smirnov statistic: the supremum
// distance between the samples' empirical CDF and the hypothesized cdf.
func KSDistance(samples []float64, cdf func(float64) float64) float64 {
	n := len(samples)
	if n == 0 {
		return math.NaN()
	}
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	maxD := 0.0
	for i, x := range xs {
		f := cdf(x)
		// The empirical CDF jumps from i/n to (i+1)/n at x; the sup is
		// attained at one side of a jump.
		if d := math.Abs(float64(i+1)/float64(n) - f); d > maxD {
			maxD = d
		}
		if d := math.Abs(f - float64(i)/float64(n)); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// ExpCDF returns the CDF of an exponential distribution with the given
// mean.
func ExpCDF(mean float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-x/mean)
	}
}

// UniformCDF returns the CDF of the uniform distribution on [lo, hi].
func UniformCDF(lo, hi float64) func(float64) float64 {
	return func(x float64) float64 {
		switch {
		case x <= lo:
			return 0
		case x >= hi:
			return 1
		default:
			return (x - lo) / (hi - lo)
		}
	}
}

// HyperExp2CDF returns the CDF of a two-phase hyperexponential: with
// probability p the sample is exponential with mean m1, otherwise mean m2
// — the analytic form of the scenario engine's "bursty" arrival gaps.
func HyperExp2CDF(p, m1, m2 float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return p*(1-math.Exp(-x/m1)) + (1-p)*(1-math.Exp(-x/m2))
	}
}
