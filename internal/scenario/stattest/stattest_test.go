package stattest

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.6f, want %.6f ± %g", name, got, want, tol)
	}
}

func TestZ(t *testing.T) {
	approx(t, "Z(0.95)", Z(0.95), 1.959964, 1e-4)
	approx(t, "Z(0.99)", Z(0.99), 2.575829, 1e-4)
	approx(t, "Z(0.999)", Z(0.999), 3.290527, 1e-4)
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "mean", Mean(xs), 5, 1e-12)
	approx(t, "variance", Variance(xs), 32.0/7, 1e-12)
	ci := MeanCI(xs, 0.95)
	if !ci.Contains(5) {
		t.Errorf("MeanCI %v does not contain the sample mean", ci)
	}
	if ci.Hi-ci.Lo <= 0 {
		t.Errorf("MeanCI %v has nonpositive width", ci)
	}
}

func TestPropCI(t *testing.T) {
	// Wilson score for 50/100 at 95%: symmetric about 0.5, half-width 0.0962.
	ci := PropCI(50, 100, 0.95)
	approx(t, "wilson lo", ci.Lo, 0.40383, 1e-3)
	approx(t, "wilson hi", ci.Hi, 0.59617, 1e-3)
	// At the extreme the interval stays inside [0, 1] and excludes 0.5.
	edge := PropCI(0, 100, 0.95)
	if edge.Lo < 0 || edge.Hi > 0.1 {
		t.Errorf("PropCI(0, 100) = %v", edge)
	}
}

func TestCorr(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 4, 6, 8, 10}
	down := []float64{5, 4, 3, 2, 1}
	approx(t, "corr up", Corr(xs, up), 1, 1e-12)
	approx(t, "corr down", Corr(xs, down), -1, 1e-12)
	if c := Corr(xs, []float64{7, 7, 7, 7, 7}); !math.IsNaN(c) {
		t.Errorf("constant margin: corr = %g, want NaN", c)
	}
}

func TestKSAgainstQuantiles(t *testing.T) {
	// Exact quantile samples of Exp(1) have a vanishing KS distance against
	// their own CDF, and a large one against a wrong mean.
	const n = 1000
	xs := make([]float64, n)
	for i := range xs {
		u := (float64(i) + 0.5) / n
		xs[i] = -math.Log(1 - u)
	}
	if d := KSDistance(xs, ExpCDF(1)); d > 1.0/n {
		t.Errorf("KS against the true CDF = %.5f, want <= %.5f", d, 1.0/n)
	}
	if d := KSDistance(xs, ExpCDF(2)); d < 0.15 {
		t.Errorf("KS against a 2x-mean CDF = %.5f, want a clear rejection", d)
	}
	if d := KSDistance(xs, ExpCDF(2)); d <= DKWEpsilon(n, 0.001) {
		t.Errorf("DKW band %.4f fails to reject a 2x wrong mean (KS %.4f)",
			DKWEpsilon(n, 0.001), d)
	}
}

func TestDKWEpsilon(t *testing.T) {
	approx(t, "DKW(1000, 0.01)", DKWEpsilon(1000, 0.01), 0.05146, 1e-4)
	if DKWEpsilon(4000, 0.01) >= DKWEpsilon(1000, 0.01) {
		t.Error("DKW band must shrink with n")
	}
}

func TestAnalyticCDFs(t *testing.T) {
	approx(t, "ExpCDF(2)(2)", ExpCDF(2)(2), 1-math.Exp(-1), 1e-12)
	approx(t, "UniformCDF(1,3)(2)", UniformCDF(1, 3)(2), 0.5, 1e-12)
	if got := UniformCDF(1, 3)(0); got != 0 {
		t.Errorf("UniformCDF below lo = %g", got)
	}
	// Hyperexponential with p=1 degenerates to the first phase.
	approx(t, "HyperExp2CDF(1,2,9)(2)", HyperExp2CDF(1, 2, 9)(2), ExpCDF(2)(2), 1e-12)
	// Mixture value at x = 1 for p=0.5, means 1 and 10.
	want := 0.5*(1-math.Exp(-1)) + 0.5*(1-math.Exp(-0.1))
	approx(t, "HyperExp2CDF(0.5,1,10)(1)", HyperExp2CDF(0.5, 1, 10)(1), want, 1e-12)
}
