package stattest

// The statistical acceptance harness for the scenario engine: hundreds of
// generated scenarios run under fixed seeds, with distributional
// invariants asserted at explicit confidence levels. Nothing here is
// golden-file based — the point is that *any* corpus a scenario-v1 spec
// describes obeys the physics and distributions it declares:
//
//   - Gilbert–Elliott chains built from generated per-link parameters
//     reproduce the configured duty cycle and mean loss-burst length.
//   - Cross-link loss correlation stays in the paper's weak-correlation
//     regime (Fig. 4) over the full impairment mix.
//   - Arrival processes match their analytic inter-arrival CDFs
//     (exponential, two-phase hyperexponential) within DKW bands, and the
//     diurnal pattern concentrates arrivals in the high-rate half-period.
//   - Topology placements land in their declared regions with the
//     declared AP separation, uniformly.
//   - Categorical mixes (device classes, impairments) and severity draws
//     match their configured weights within Wilson/DKW bounds.
//
// Every test uses a fixed spec seed: a failure is reproducible, never
// flaky. Confidence levels are 0.999 or tighter so the suite's total
// false-alarm budget stays far below one in a thousand runs.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sim/rng"
)

func mustSpec(t *testing.T, doc string) *scenario.Spec {
	t.Helper()
	s, err := scenario.DecodeSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAcceptGilbertElliottBursts generates 120 scenarios with explicit GE
// parameter ranges and checks that chains built from the drawn per-link
// parameters reproduce (a) the configured Bad duty cycle and (b) the
// configured mean burst length, in aggregate across the corpus.
func TestAcceptGilbertElliottBursts(t *testing.T) {
	s := mustSpec(t, `{
	  "schema": "scenario-v1", "name": "accept-ge", "seed": 1001, "count": 120,
	  "corpus": {
	    "gilbert_elliott": {"good_ms": [500, 2000], "bad_ms": [100, 600], "depth_db": [20, 45]}
	  }
	}`)
	const (
		spacing = 20 * sim.Millisecond // VoIP packet spacing
		horizon = 600 * sim.Second     // per-scenario sampling horizon
	)
	var dutyRatios, burstRatios []float64
	for i := 0; i < s.Count; i++ {
		g := s.Generate(i)
		p := g.Scenario.Params()
		link := p.LinkA
		chain := phy.NewGilbertElliott(rng.Named(g.Seed, "stattest/ge"), link.FadeGood, link.FadeBad)

		samples := int(horizon / spacing)
		bad, bursts, burstLen, curLen := 0, 0, 0, 0
		prev := false
		for k := 0; k < samples; k++ {
			cur := chain.Bad(sim.Time(k) * sim.Time(spacing))
			if cur {
				bad++
				curLen++
			}
			if prev && !cur {
				bursts++
				burstLen += curLen
				curLen = 0
			}
			prev = cur
		}
		wantDuty := float64(link.FadeBad) / float64(link.FadeGood+link.FadeBad)
		dutyRatios = append(dutyRatios, float64(bad)/float64(samples)/wantDuty)
		if bursts >= 20 {
			wantBurst := float64(link.FadeBad) / float64(spacing)
			burstRatios = append(burstRatios, float64(burstLen)/float64(bursts)/wantBurst)
		}
	}

	// Duty cycle is unbiased up to the start-in-Good transient
	// (~cycle/horizon ≈ 0.4%); the 99.9% CI must cover 1.
	ci := MeanCI(dutyRatios, 0.999)
	if !ci.Contains(1) {
		t.Errorf("duty-cycle ratio CI %v excludes 1 (mean %.4f over %d scenarios)",
			ci, Mean(dutyRatios), len(dutyRatios))
	}
	// Sampling at 20 ms quantizes sojourns: observed burst length carries a
	// positive O(1-sample) bias, so the acceptance band is mean ratio in
	// [0.95, 1.20] — wide enough for the bias, far too tight for a wrong
	// sojourn distribution (uniform sojourns shift the ratio past 1.4).
	if len(burstRatios) < 100 {
		t.Fatalf("only %d scenarios yielded enough bursts", len(burstRatios))
	}
	if m := Mean(burstRatios); m < 0.95 || m > 1.20 {
		t.Errorf("mean burst-length ratio %.4f outside [0.95, 1.20] (n=%d)", m, len(burstRatios))
	}
}

// TestAcceptCrossLinkCorrelation runs 100 generated scenarios end to end
// as dual independent calls and asserts the cross-link loss correlation
// stays in the paper's weak-correlation regime (Fig. 4): the two links
// rarely lose the same packets, which is what makes duplication across
// links pay off.
func TestAcceptCrossLinkCorrelation(t *testing.T) {
	// Fig. 4 is measured on impaired links, so the corpus draws only the
	// four impaired classes, at elevated severity so both links see loss.
	s := mustSpec(t, `{
	  "schema": "scenario-v1", "name": "accept-corr", "seed": 2002, "count": 100,
	  "duration_s": 30,
	  "corpus": {
	    "severity": [1.5, 2.5],
	    "impairments": [
	      {"name": "weak-link", "weight": 1},
	      {"name": "mobility", "weight": 1},
	      {"name": "microwave", "weight": 1},
	      {"name": "congestion", "weight": 1}
	    ]
	  }
	}`)
	deadline := s.TrafficProfile().Deadline
	var corrs []float64
	defined := 0
	for i := 0; i < s.Count; i++ {
		g := s.Generate(i)
		dc := core.RunDualCall(g.Scenario)
		// A packet is lost if it misses the interactive deadline — the
		// paper's loss notion for Fig. 4.
		lateA := dc.TraceA.LostWithDeadline(deadline)
		lateB := dc.TraceB.LostWithDeadline(deadline)
		lossA := make([]float64, len(lateA))
		lossB := make([]float64, len(lateB))
		for seq := range lateA {
			if lateA[seq] {
				lossA[seq] = 1
			}
			if lateB[seq] {
				lossB[seq] = 1
			}
		}
		c := Corr(lossA, lossB)
		if math.IsNaN(c) {
			continue // a lossless link has no defined loss correlation
		}
		defined++
		corrs = append(corrs, c)
	}
	if defined < 30 {
		t.Fatalf("only %d/%d scenarios had loss on both links", defined, s.Count)
	}
	// Weak-correlation regime: the corpus-mean correlation is near zero.
	// The band [-0.10, 0.30] is the acceptance contract — microwave and
	// congestion scenarios couple the links slightly (shared interferer,
	// both-channel congestion), genuinely correlated losses (same-channel
	// fate sharing) would push the mean past 0.5.
	ci := MeanCI(corrs, 0.999)
	if ci.Lo < -0.10 || ci.Hi > 0.30 {
		t.Errorf("mean cross-link loss correlation CI %v outside weak regime [-0.10, 0.30] (n=%d)",
			ci, defined)
	}
}

// TestAcceptArrivalPatterns checks each arrival pattern's inter-arrival
// distribution against its analytic CDF with a DKW band at alpha = 0.001.
func TestAcceptArrivalPatterns(t *testing.T) {
	const n = 4000
	gaps := func(starts []sim.Duration) []float64 {
		out := make([]float64, 0, len(starts)-1)
		for i := 1; i < len(starts); i++ {
			out = append(out, (starts[i] - starts[i-1]).Seconds())
		}
		return out
	}
	specFor := func(pattern, extra string) string {
		return fmt.Sprintf(`{
		  "schema": "scenario-v1", "name": "accept-arrivals", "seed": 3003, "count": 2,
		  "corpus": {"arrivals": {"pattern": %q, "rate_per_min": 6%s}}
		}`, pattern, extra)
	}
	meanS := 10.0 // 6 calls/min

	t.Run("poisson", func(t *testing.T) {
		s := mustSpec(t, specFor("poisson", ""))
		xs := gaps(s.Arrivals(n))
		if d, eps := KSDistance(xs, ExpCDF(meanS)), DKWEpsilon(len(xs), 0.001); d > eps {
			t.Errorf("poisson inter-arrival KS %.4f > DKW %.4f", d, eps)
		}
	})
	t.Run("bursty", func(t *testing.T) {
		s := mustSpec(t, specFor("bursty", `, "burst_factor": 10, "burst_frac": 0.5`))
		xs := gaps(s.Arrivals(n))
		shortMean := meanS / 10
		longMean := (meanS - 0.5*shortMean) / 0.5
		if d, eps := KSDistance(xs, HyperExp2CDF(0.5, shortMean, longMean)), DKWEpsilon(len(xs), 0.001); d > eps {
			t.Errorf("bursty inter-arrival KS %.4f > DKW %.4f", d, eps)
		}
		// The burst mixture preserves the overall mean rate.
		if ci := MeanCI(xs, 0.999); !ci.Contains(meanS) {
			t.Errorf("bursty mean gap CI %v excludes the nominal %g s", ci, meanS)
		}
		// And it must NOT look exponential: a plain Poisson process at the
		// same rate is rejected, which is the whole point of the pattern.
		if d, eps := KSDistance(xs, ExpCDF(meanS)), DKWEpsilon(len(xs), 0.001); d <= eps {
			t.Errorf("bursty gaps indistinguishable from exponential (KS %.4f <= DKW %.4f)", d, eps)
		}
	})
	t.Run("diurnal", func(t *testing.T) {
		// Period 600 s at 60/min: ~600 arrivals per period, 12000 total
		// spans ~20 periods. Arrivals concentrate in the sin > 0 half: the
		// expected fraction is 1/2 + A/pi with A = (P-1)/(P+1).
		s := mustSpec(t, `{
		  "schema": "scenario-v1", "name": "accept-diurnal", "seed": 4004, "count": 2,
		  "corpus": {"arrivals": {"pattern": "diurnal", "rate_per_min": 60,
		    "peak_to_trough": 4, "period_s": 600}}
		}`)
		starts := s.Arrivals(12000)
		const period = 600.0
		// Truncate to whole periods so the phase fractions are exact.
		lastFull := math.Floor(starts[len(starts)-1].Seconds()/period) * period
		high, total := 0, 0
		for _, d := range starts {
			ts := d.Seconds()
			if ts >= lastFull {
				break
			}
			total++
			if math.Sin(2*math.Pi*ts/period) > 0 {
				high++
			}
		}
		amp := (4.0 - 1) / (4.0 + 1)
		wantFrac := 0.5 + amp/math.Pi
		if ci := PropCI(high, total, 0.999); !ci.Contains(wantFrac) {
			t.Errorf("diurnal high-phase fraction CI %v excludes %.4f (high %d / %d)",
				ci, wantFrac, high, total)
		}
	})
}

// TestAcceptTopologyPlacement generates 200 scenarios with explicit
// placement regions and checks the hard constraints (regions, minimum AP
// separation) plus uniformity of the client placement.
func TestAcceptTopologyPlacement(t *testing.T) {
	s := mustSpec(t, `{
	  "schema": "scenario-v1", "name": "accept-topo", "seed": 5005, "count": 200,
	  "corpus": {
	    "topology": {
	      "ap_a": {"x": [0, 5], "y": [0, 5]},
	      "ap_b": {"x": [25, 30], "y": [10, 15]},
	      "client": {"x": [0, 30], "y": [0, 15]},
	      "min_ap_separation_m": 20
	    }
	  }
	}`)
	var clientX []float64
	for i := 0; i < s.Count; i++ {
		p := s.Generate(i).Scenario.Params()
		if d := p.APA.DistanceTo(p.APB); d < 20 {
			t.Fatalf("scenario %d: AP separation %.2f m < 20 m", i, d)
		}
		if p.APA.X > 5 || p.APA.Y > 5 || p.APB.X < 25 || p.APB.Y < 10 {
			t.Fatalf("scenario %d: AP placement outside region: A=%+v B=%+v", i, p.APA, p.APB)
		}
		if !p.Mobile {
			clientX = append(clientX, p.ClientPos.X)
		}
	}
	if len(clientX) < 100 {
		t.Fatalf("only %d static-client scenarios", len(clientX))
	}
	if d, eps := KSDistance(clientX, UniformCDF(0, 30)), DKWEpsilon(len(clientX), 0.001); d > eps {
		t.Errorf("client X not uniform on [0, 30]: KS %.4f > DKW %.4f (n=%d)", d, eps, len(clientX))
	}
}

// TestAcceptMixesAndSeverity checks the categorical draws (device classes,
// impairment weights) against Wilson intervals and the severity draw
// against its declared uniform range, over 500 generated scenarios.
func TestAcceptMixesAndSeverity(t *testing.T) {
	s := mustSpec(t, `{
	  "schema": "scenario-v1", "name": "accept-mix", "seed": 6006, "count": 500,
	  "corpus": {
	    "impairments": [
	      {"name": "microwave", "weight": 2},
	      {"name": "congestion", "weight": 1},
	      {"name": "none", "weight": 1}
	    ],
	    "devices": [{"name": "pc", "weight": 0.7}, {"name": "mobile", "weight": 0.3}],
	    "severity": [0.5, 2]
	  }
	}`)
	pc, oven := 0, 0
	var sev []float64
	for i := 0; i < s.Count; i++ {
		m := s.MetaAt(i)
		if m.Device == "pc" {
			pc++
		}
		if m.Impairment == core.ImpMicrowave {
			oven++
		}
		sev = append(sev, m.Severity)
	}
	if ci := PropCI(pc, s.Count, 0.999); !ci.Contains(0.7) {
		t.Errorf("pc fraction CI %v excludes the configured 0.7 (%d/%d)", ci, pc, s.Count)
	}
	if ci := PropCI(oven, s.Count, 0.999); !ci.Contains(0.5) {
		t.Errorf("microwave fraction CI %v excludes the configured 0.5 (%d/%d)", ci, oven, s.Count)
	}
	if d, eps := KSDistance(sev, UniformCDF(0.5, 2)), DKWEpsilon(len(sev), 0.001); d > eps {
		t.Errorf("severity not uniform on [0.5, 2]: KS %.4f > DKW %.4f", d, eps)
	}
}
