package scenario

// YAMLToValue parses a document in the repo's YAML subset (yaml.go) into
// the shape encoding/json produces: map[string]any, []any, string, float64,
// bool, nil (integers as int64). It is exported for other declarative-spec
// decoders that reuse the scenario idiom — sniff '{' for JSON, otherwise
// convert YAML to a value, re-marshal, and decode strictly — such as the
// slo-v1 ruleset loader (internal/obs/slo).
func YAMLToValue(data []byte) (any, error) {
	return yamlToValue(data)
}
