package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestYAMLToValue(t *testing.T) {
	doc := `
# scenario corpus
schema: scenario-v1
name: "office corpus"
seed: -42
count: 100
corpus:
  severity: [0.5, 1.5]
  impairments:
    - name: microwave
      weight: 2
    - name: none
      weight: 1.5
  gilbert_elliott:
    good_ms: [500, 2000]
    bad_ms: 300        # degenerate range
  flags: [true, false, null, 'a b', "c\td"]
empty:
`
	v, err := yamlToValue([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"schema": "scenario-v1",
		"name":   "office corpus",
		"seed":   int64(-42),
		"count":  int64(100),
		"corpus": map[string]any{
			"severity": []any{0.5, 1.5},
			"impairments": []any{
				map[string]any{"name": "microwave", "weight": int64(2)},
				map[string]any{"name": "none", "weight": 1.5},
			},
			"gilbert_elliott": map[string]any{
				"good_ms": []any{int64(500), int64(2000)},
				"bad_ms":  int64(300),
			},
			"flags": []any{true, false, nil, "a b", "c\td"},
		},
		"empty": nil,
	}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("parsed value mismatch\n got: %#v\nwant: %#v", v, want)
	}
}

func TestYAMLRejects(t *testing.T) {
	cases := []struct{ name, doc, wantSub string }{
		{"tab indent", "a:\n\tb: 1", "tab in indentation"},
		{"bare scalar at root", "just a scalar line", "key: value"},
		{"nan named", "bad_ms: .nan", `"bad_ms": non-finite`},
		{"inf named", "dur: -.inf", `"dur": non-finite`},
		{"anchor", "a: &x 1", "anchors"},
		{"flow map", "a: {b: 1}", "flow mappings"},
		{"multiline", "a: |", "multiline"},
		{"unterminated quote", `a: "oops`, "unterminated"},
		{"unbalanced flow", "a: [1, 2", "unterminated flow"},
		{"dup key", "a: 1\na: 2", "duplicate key"},
		{"seq in map", "a: 1\n- b", "sequence item in a mapping"},
		{"empty", "\n\n# only comments\n", "empty document"},
	}
	for _, c := range cases {
		if _, err := yamlToValue([]byte(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.wantSub)
		}
	}
}

// TestYAMLLineNumbers: parse errors must carry the 1-based source line so
// a spec author can find the problem in a 100-line document.
func TestYAMLLineNumbers(t *testing.T) {
	doc := "a: 1\nb: 2\n\n# comment\nc: .nan\n"
	_, err := yamlToValue([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Errorf("error %v does not name line 5", err)
	}
}
