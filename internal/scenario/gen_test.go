package scenario

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sim/rng"
	"repro/internal/traffic"
)

func mustDecode(t *testing.T, doc string) *Spec {
	t.Helper()
	s, err := DecodeSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const corpusDoc = `{
  "schema": "scenario-v1", "name": "gen-test", "seed": 31, "count": 64,
  "duration_s": 30,
  "corpus": {
    "severity": [0.5, 2],
    "gilbert_elliott": {"good_ms": [500, 2000], "bad_ms": [100, 600], "depth_db": [20, 45]},
    "microwave": {"start_s": [1, 5], "dur_s": [2, 10], "region": {"x": [10, 20], "y": [5, 10]}},
    "congestion": {"busy": [0.3, 0.9], "hit": [0.2, 0.8], "both_prob": 0.5},
    "mobility": {"speed_mps": [0.5, 3], "pause_s": [0, 10]},
    "topology": {"ap_a": {"x": [0, 5], "y": [0, 5]}, "ap_b": {"x": [25, 30], "y": [10, 15]}, "min_ap_separation_m": 20},
    "arrivals": {"pattern": "poisson", "rate_per_min": 6}
  }
}`

// TestGenerateDeterministic: Generate(i) is a pure function of (spec, i) —
// repeated and concurrent calls agree, and a re-decoded copy of the same
// document generates the identical corpus.
func TestGenerateDeterministic(t *testing.T) {
	s := mustDecode(t, corpusDoc)
	s2 := mustDecode(t, corpusDoc)
	if s.Hash() != s2.Hash() {
		t.Fatalf("same document, different hashes: %s vs %s", s.Hash(), s2.Hash())
	}
	first := s.GenerateAll()
	again := s2.GenerateAll()
	if !reflect.DeepEqual(first, again) {
		t.Fatal("re-decoded spec generated a different corpus")
	}

	var wg sync.WaitGroup
	conc := make([]Generated, s.Count)
	for i := 0; i < s.Count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conc[i] = s.Generate(i)
		}(i)
	}
	wg.Wait()
	for i := range conc {
		conc[i].Start = first[i].Start // Generate leaves Start zero by contract
		if !reflect.DeepEqual(conc[i], first[i]) {
			t.Fatalf("concurrent Generate(%d) diverged", i)
		}
	}
}

func TestMetaAtMatchesGenerate(t *testing.T) {
	s := mustDecode(t, corpusDoc)
	for i := 0; i < s.Count; i++ {
		if m := s.MetaAt(i); m != s.Generate(i).Meta {
			t.Fatalf("MetaAt(%d) = %+v != Generate Meta %+v", i, m, s.Generate(i).Meta)
		}
	}
}

// TestCorpusOverridesRespected: every explicit range in the corpus spec
// bounds the corresponding parameter of every generated scenario.
func TestCorpusOverridesRespected(t *testing.T) {
	s := mustDecode(t, corpusDoc)
	c := s.Corpus
	sawOven, sawCongest, sawMobile := false, false, false
	for _, g := range s.GenerateAll() {
		p := g.Scenario.Params()
		if !c.Severity.Contains(g.Severity) {
			t.Fatalf("scenario %d: severity %g outside %+v", g.Index, g.Severity, c.Severity)
		}
		if want := deviceMIMO[g.Device]; p.MIMOOrder != want {
			t.Fatalf("scenario %d: device %q but MIMO order %d", g.Index, g.Device, p.MIMOOrder)
		}
		if p.Duration != sim.FromSeconds(30) {
			t.Fatalf("scenario %d: duration %v", g.Index, p.Duration)
		}
		for _, l := range [2]core.ScenarioLink{p.LinkA, p.LinkB} {
			if !c.GE.GoodMS.Contains(float64(l.FadeGood) / 1000) {
				t.Fatalf("scenario %d: fade good %v outside %+v ms", g.Index, l.FadeGood, c.GE.GoodMS)
			}
			if !c.GE.BadMS.Contains(float64(l.FadeBad) / 1000) {
				t.Fatalf("scenario %d: fade bad %v outside %+v ms", g.Index, l.FadeBad, c.GE.BadMS)
			}
			if !c.GE.DepthDB.Contains(l.FadeDepthDB) {
				t.Fatalf("scenario %d: fade depth %g outside %+v", g.Index, l.FadeDepthDB, c.GE.DepthDB)
			}
		}
		if t1 := c.Topology; t1 != nil {
			if !t1.APA.X.Contains(p.APA.X) || !t1.APA.Y.Contains(p.APA.Y) {
				t.Fatalf("scenario %d: AP A at %+v outside region", g.Index, p.APA)
			}
			if !t1.APB.X.Contains(p.APB.X) || !t1.APB.Y.Contains(p.APB.Y) {
				t.Fatalf("scenario %d: AP B at %+v outside region", g.Index, p.APB)
			}
			if d := p.APA.DistanceTo(p.APB); d < t1.MinAPSeparationM {
				t.Fatalf("scenario %d: AP separation %.1f m < %g m", g.Index, d, t1.MinAPSeparationM)
			}
		}
		if p.Oven {
			sawOven = true
			if !c.Microwave.StartS.Contains(p.OvenStart.Seconds()) {
				t.Fatalf("scenario %d: oven start %v outside %+v s", g.Index, p.OvenStart, c.Microwave.StartS)
			}
			if !c.Microwave.DurS.Contains(p.OvenDur.Seconds()) {
				t.Fatalf("scenario %d: oven dur %v outside %+v s", g.Index, p.OvenDur, c.Microwave.DurS)
			}
			r := c.Microwave.Region
			if !r.X.Contains(p.OvenPos.X) || !r.Y.Contains(p.OvenPos.Y) {
				t.Fatalf("scenario %d: oven at %+v outside region", g.Index, p.OvenPos)
			}
		}
		if p.CongestA {
			sawCongest = true
			if !c.Congestion.Busy.Contains(p.CongestBusy) || !c.Congestion.Hit.Contains(p.CongestHit) {
				t.Fatalf("scenario %d: congestion busy=%g hit=%g outside spec", g.Index, p.CongestBusy, p.CongestHit)
			}
		}
		if p.Mobile {
			sawMobile = true
			if !c.Mobility.SpeedMPS.Contains(p.WalkSpeed) {
				t.Fatalf("scenario %d: walk speed %g outside %+v", g.Index, p.WalkSpeed, c.Mobility.SpeedMPS)
			}
			if !c.Mobility.PauseS.Contains(p.WalkPause.Seconds()) {
				t.Fatalf("scenario %d: walk pause %v outside %+v s", g.Index, p.WalkPause, c.Mobility.PauseS)
			}
		}
	}
	// 64 draws over a uniform 5-class mix miss a class with prob < 1e-6.
	if !sawOven || !sawCongest || !sawMobile {
		t.Errorf("corpus never exercised some impairment: oven=%v congest=%v mobile=%v",
			sawOven, sawCongest, sawMobile)
	}
}

// TestSpineDrawMatchesSimtestDerivation: a spine draw spec at stream
// "simtest/corpus" reproduces the golden suite's scenario derivation
// exactly — the same construction simtest uses for its random scenarios.
func TestSpineDrawMatchesSimtestDerivation(t *testing.T) {
	s := mustDecode(t, `{
	  "schema": "scenario-v1", "name": "microwave", "seed": 202, "duration_s": 5,
	  "spine": {"draw": {"impairment": "microwave", "stream": "simtest/corpus"}}
	}`)
	got := s.Generate(0).Scenario
	want := core.RandomScenarioSeverity(rng.Named(202, "simtest/corpus"),
		core.ImpMicrowave, traffic.G711, 202, 1.0).WithDuration(5 * sim.Second)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spine draw scenario differs from simtest derivation\n got %+v\nwant %+v",
			got.Params(), want.Params())
	}
}

// TestSpineControlledMatchesConstructor: the controlled spine form is
// core.ControlledScenario exactly, including millisecond-exact fading.
func TestSpineControlledMatchesConstructor(t *testing.T) {
	s := mustDecode(t, `{
	  "schema": "scenario-v1", "name": "head-drop", "seed": 606, "duration_s": 5,
	  "spine": {"controlled": {"extra_loss_b_db": 6,
	    "fading": {"on_a": true, "good_ms": 400, "bad_ms": 600, "depth_db": 40}}}
	}`)
	got := s.Generate(0).Scenario
	want := core.ControlledScenario(606, traffic.G711, 5*sim.Second, 0, 6).
		WithMIMO(1).
		WithFading(true, 400*sim.Millisecond, 600*sim.Millisecond, 40)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("controlled spine differs from constructor\n got %+v\nwant %+v",
			got.Params(), want.Params())
	}
	// The millisecond encoding must land on the exact microsecond values the
	// golden scenarios use (float seconds would truncate 0.6 s to 599999 µs).
	p := got.Params()
	if p.LinkA.FadeGood != 400*sim.Millisecond || p.LinkA.FadeBad != 600*sim.Millisecond {
		t.Errorf("fading sojourns %v/%v not millisecond-exact", p.LinkA.FadeGood, p.LinkA.FadeBad)
	}
}

// TestSpineSeedIncrement: spine scenario i runs at seed Seed+i, so a spine
// spec with count N is N independent repetitions of the pinned call.
func TestSpineSeedIncrement(t *testing.T) {
	s := mustDecode(t, `{
	  "schema": "scenario-v1", "name": "reps", "seed": 100, "count": 3, "duration_s": 5,
	  "spine": {"controlled": {"extra_loss_b_db": 6}}
	}`)
	for i := 0; i < 3; i++ {
		g := s.Generate(i)
		if g.Seed != 100+int64(i) {
			t.Errorf("Generate(%d).Seed = %d, want %d", i, g.Seed, 100+int64(i))
		}
	}
}

func TestArrivalsMonotone(t *testing.T) {
	s := mustDecode(t, corpusDoc)
	starts := s.Arrivals(s.Count)
	prev := sim.Duration(-1)
	for i, d := range starts {
		if d <= prev {
			t.Fatalf("arrival %d at %v not after %v", i, d, prev)
		}
		prev = d
	}
	// Without an arrivals section, the timeline is all zeros.
	s2 := mustDecode(t, `{"schema":"scenario-v1","name":"x","count":4,"corpus":{"severity":1}}`)
	for i, d := range s2.Arrivals(4) {
		if d != 0 {
			t.Errorf("no-arrivals spec: start %d = %v, want 0", i, d)
		}
	}
}

func TestMixesNormalized(t *testing.T) {
	s := mustDecode(t, corpusDoc)
	for name, mix := range map[string][]Weighted{
		"impairments": s.ImpairmentMix(), "devices": s.DeviceMix(),
	} {
		sum := 0.0
		for _, w := range mix {
			sum += w.Weight
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s mix sums to %g", name, sum)
		}
	}
	spine := mustDecode(t, `{
	  "schema": "scenario-v1", "name": "m", "seed": 202, "duration_s": 5,
	  "spine": {"draw": {"impairment": "microwave", "stream": "simtest/corpus"}}
	}`)
	if mix := spine.ImpairmentMix(); len(mix) != 1 || mix[0].Name != "microwave" {
		t.Errorf("spine impairment mix = %+v", mix)
	}
	if mix := spine.DeviceMix(); len(mix) != 1 {
		t.Errorf("spine device mix = %+v", mix)
	}
}
