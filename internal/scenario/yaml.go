package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is a deliberately small YAML-subset decoder, just large enough
// for scenario-v1 spec documents: block mappings nested by indentation,
// block sequences ("- item"), flow sequences ("[lo, hi]"), quoted and plain
// scalars, and "#" comments. It exists because the repository takes no
// external dependencies; specs that need none of YAML's conveniences can
// simply be written as JSON (DecodeSpec sniffs the syntax).
//
// Unsupported on purpose: anchors/aliases, tags, multi-document streams,
// flow mappings, multiline scalars. The decoder rejects them with a line
// number rather than guessing.
//
// Non-finite numbers (.nan, .inf) are rejected at parse time, with the
// offending key named: a scenario spec is a physical description, and NaN
// durations or infinite loss rates must fail loudly (see FuzzDecodeSpec).

// yamlError is a parse error carrying the 1-based source line.
type yamlError struct {
	line int
	msg  string
}

func (e *yamlError) Error() string { return fmt.Sprintf("yaml: line %d: %s", e.line, e.msg) }

func yamlErrf(line int, format string, args ...any) error {
	return &yamlError{line: line, msg: fmt.Sprintf(format, args...)}
}

// yamlLine is one significant (non-blank, non-comment) source line.
type yamlLine struct {
	num    int    // 1-based source line number
	indent int    // leading spaces
	text   string // content with indentation and trailing comment removed
}

// yamlToValue parses a YAML-subset document into the same shape
// encoding/json produces: map[string]any, []any, string, float64, bool,
// nil. Integers are returned as int64 so large seeds survive exactly.
func yamlToValue(data []byte) (any, error) {
	lines, err := yamlSplit(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, yamlErrf(1, "empty document")
	}
	v, rest, err := parseBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, yamlErrf(rest[0].num, "content outdented past the document root")
	}
	return v, nil
}

// yamlSplit prepares the significant lines: strips comments (respecting
// quotes), drops blanks and the "---" document marker, and rejects tabs in
// indentation (as YAML itself does).
func yamlSplit(doc string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(doc, "\n") {
		num := i + 1
		line := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, yamlErrf(num, "tab in indentation")
		}
		text := stripComment(line[indent:])
		text = strings.TrimRight(text, " ")
		if text == "" || text == "---" {
			continue
		}
		out = append(out, yamlLine{num: num, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment. A '#' only starts a
// comment at the beginning of the content or after a space, and never
// inside a quoted span.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses the run of lines at exactly indent, which must all be
// the same kind (mapping entries or sequence items). It returns the value
// and the lines that belong to enclosing blocks.
func parseBlock(lines []yamlLine, indent int) (any, []yamlLine, error) {
	if len(lines) == 0 {
		return nil, lines, nil
	}
	if strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-" {
		return parseSequence(lines, indent)
	}
	return parseMapping(lines, indent)
}

func parseMapping(lines []yamlLine, indent int) (any, []yamlLine, error) {
	m := map[string]any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, yamlErrf(ln.num, "unexpected indentation")
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, nil, yamlErrf(ln.num, "sequence item in a mapping block")
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := m[key]; dup {
			return nil, nil, yamlErrf(ln.num, "duplicate key %q", key)
		}
		lines = lines[1:]
		if rest == "" {
			// Value is the nested block, or null when nothing is nested.
			if len(lines) > 0 && lines[0].indent > indent {
				v, tail, err := parseBlock(lines, lines[0].indent)
				if err != nil {
					return nil, nil, err
				}
				m[key] = v
				lines = tail
			} else {
				m[key] = nil
			}
			continue
		}
		v, err := parseScalar(rest, ln.num, key)
		if err != nil {
			return nil, nil, err
		}
		m[key] = v
	}
	return m, lines, nil
}

func parseSequence(lines []yamlLine, indent int) (any, []yamlLine, error) {
	seq := []any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, yamlErrf(ln.num, "unexpected indentation")
		}
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, nil, yamlErrf(ln.num, "mapping entry in a sequence block")
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// Item is the nested block on the following lines.
			lines = lines[1:]
			if len(lines) > 0 && lines[0].indent > indent {
				v, tail, err := parseBlock(lines, lines[0].indent)
				if err != nil {
					return nil, nil, err
				}
				seq = append(seq, v)
				lines = tail
			} else {
				seq = append(seq, nil)
			}
			continue
		}
		if strings.Contains(rest, ": ") || strings.HasSuffix(rest, ":") {
			// "- key: value" compact mapping item: re-parse the remainder
			// as a mapping whose first line starts after the dash.
			inner := []yamlLine{{num: ln.num, indent: ln.indent + 2, text: rest}}
			i := 1
			for ; i < len(lines); i++ {
				if lines[i].indent <= ln.indent {
					break
				}
				inner = append(inner, lines[i])
			}
			v, tail, err := parseMapping(inner, ln.indent+2)
			if err != nil {
				return nil, nil, err
			}
			if len(tail) > 0 {
				return nil, nil, yamlErrf(tail[0].num, "bad indentation in sequence item")
			}
			seq = append(seq, v)
			lines = lines[i:]
			continue
		}
		v, err := parseScalar(rest, ln.num, "")
		if err != nil {
			return nil, nil, err
		}
		seq = append(seq, v)
		lines = lines[1:]
	}
	return seq, lines, nil
}

// splitKey splits a "key: value" line, handling quoted keys. The returned
// rest is "" when the value is nested (or null).
func splitKey(ln yamlLine) (key, rest string, err error) {
	s := ln.text
	if s[0] == '\'' || s[0] == '"' {
		q := s[0]
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return "", "", yamlErrf(ln.num, "unterminated quoted key")
		}
		key = s[1 : 1+end]
		s = s[2+end:]
		if !strings.HasPrefix(s, ":") {
			return "", "", yamlErrf(ln.num, "expected ':' after quoted key")
		}
		return key, strings.TrimLeft(s[1:], " "), nil
	}
	i := strings.Index(s, ": ")
	if i < 0 {
		if strings.HasSuffix(s, ":") {
			return strings.TrimSpace(s[:len(s)-1]), "", nil
		}
		return "", "", yamlErrf(ln.num, "expected a 'key: value' mapping entry")
	}
	return strings.TrimSpace(s[:i]), strings.TrimLeft(s[i+2:], " "), nil
}

// parseScalar parses a scalar or flow-sequence value. key (may be empty)
// contextualizes error messages — "field x: non-finite number" is the
// contract FuzzDecodeSpec checks.
func parseScalar(s string, line int, key string) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case s[0] == '[':
		return parseFlowSeq(s, line, key)
	case s[0] == '{':
		return nil, yamlErrf(line, "flow mappings are not supported")
	case s[0] == '&' || s[0] == '*' || s[0] == '!':
		return nil, yamlErrf(line, "anchors, aliases and tags are not supported")
	case s[0] == '|' || s[0] == '>':
		return nil, yamlErrf(line, "multiline scalars are not supported")
	case s[0] == '\'' || s[0] == '"':
		q := s[0]
		if len(s) < 2 || s[len(s)-1] != q {
			return nil, yamlErrf(line, "unterminated quoted string")
		}
		body := s[1 : len(s)-1]
		if q == '\'' {
			return strings.ReplaceAll(body, "''", "'"), nil
		}
		unq, err := strconv.Unquote(`"` + body + `"`)
		if err != nil {
			return nil, yamlErrf(line, "bad escape in double-quoted string")
		}
		return unq, nil
	}
	switch strings.ToLower(s) {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	case ".nan", "nan", ".inf", "inf", "+.inf", "-.inf", "-inf", "+inf":
		if key != "" {
			return nil, yamlErrf(line, "field %q: non-finite number", key)
		}
		return nil, yamlErrf(line, "non-finite number")
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil // plain string
}

// parseFlowSeq parses "[a, b, ...]" with nesting.
func parseFlowSeq(s string, line int, key string) (any, error) {
	if s[len(s)-1] != ']' {
		return nil, yamlErrf(line, "unterminated flow sequence")
	}
	body := s[1 : len(s)-1]
	seq := []any{}
	depth, start := 0, 0
	var quote byte
	flush := func(end int) error {
		item := strings.TrimSpace(body[start:end])
		if item == "" {
			return yamlErrf(line, "empty item in flow sequence")
		}
		v, err := parseScalar(item, line, key)
		if err != nil {
			return err
		}
		seq = append(seq, v)
		return nil
	}
	if strings.TrimSpace(body) == "" {
		return seq, nil
	}
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			if err := flush(i); err != nil {
				return nil, err
			}
			start = i + 1
		}
	}
	if quote != 0 {
		return nil, yamlErrf(line, "unterminated quoted string in flow sequence")
	}
	if depth != 0 {
		return nil, yamlErrf(line, "unbalanced brackets in flow sequence")
	}
	if err := flush(len(body)); err != nil {
		return nil, err
	}
	return seq, nil
}
