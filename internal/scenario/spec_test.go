package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDecodeSpecDefaults(t *testing.T) {
	s, err := DecodeSpec([]byte(`{"schema":"scenario-v1","name":"c","seed":7,"corpus":{"severity":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 1 || s.Profile != "g711" || s.DurationS != 120 {
		t.Errorf("defaults: count=%d profile=%q duration=%g", s.Count, s.Profile, s.DurationS)
	}
	if n := len(s.Corpus.Impairments); n != 5 {
		t.Errorf("default impairment mix has %d entries, want 5", n)
	}
	if n := len(s.Corpus.Devices); n != 2 {
		t.Errorf("default device mix has %d entries, want 2", n)
	}
	if s.Corpus.Severity != (Range{Lo: 1, Hi: 1}) {
		t.Errorf("severity = %+v, want [1,1]", s.Corpus.Severity)
	}
	if s.Hash() == "" {
		t.Error("normalized spec has empty hash")
	}
}

func TestDecodeSpecRejects(t *testing.T) {
	cases := []struct{ name, doc, wantSub string }{
		{"bad schema",
			`{"schema":"scenario-v2","name":"x","corpus":{}}`,
			`schema: got "scenario-v2"`},
		{"missing name",
			`{"schema":"scenario-v1","corpus":{}}`,
			"name: required"},
		{"negative count",
			`{"schema":"scenario-v1","name":"x","count":-3,"corpus":{}}`,
			"count: -3 outside"},
		{"huge count",
			`{"schema":"scenario-v1","name":"x","count":2000000,"corpus":{}}`,
			"count: 2000000 outside"},
		{"unknown profile",
			`{"schema":"scenario-v1","name":"x","profile":"opus","corpus":{}}`,
			`profile: unknown "opus"`},
		{"negative duration",
			`{"schema":"scenario-v1","name":"x","duration_s":-5,"corpus":{}}`,
			"duration_s: -5 outside [0.1, 7200]"},
		{"nan duration yaml",
			"schema: scenario-v1\nname: x\nduration_s: .nan\ncorpus:\n  severity: 1\n",
			`"duration_s": non-finite`},
		{"spine and corpus",
			`{"schema":"scenario-v1","name":"x","spine":{"draw":{"impairment":"none"}},"corpus":{}}`,
			"spine and corpus are mutually exclusive"},
		{"neither section",
			`{"schema":"scenario-v1","name":"x"}`,
			"needs a spine or a corpus"},
		{"spine both forms",
			`{"schema":"scenario-v1","name":"x","spine":{"controlled":{},"draw":{"impairment":"none"}}}`,
			"controlled and draw are mutually exclusive"},
		{"spine empty",
			`{"schema":"scenario-v1","name":"x","spine":{}}`,
			"spine needs a controlled or a draw"},
		{"unknown impairment",
			`{"schema":"scenario-v1","name":"x","spine":{"draw":{"impairment":"solar-flare"}}}`,
			`spine.draw.impairment: unknown "solar-flare"`},
		{"severity out of range",
			`{"schema":"scenario-v1","name":"x","spine":{"draw":{"impairment":"none","severity":9}}}`,
			"spine.draw.severity: 9 outside [0.1, 4]"},
		{"fading bad_ms zero",
			`{"schema":"scenario-v1","name":"x","spine":{"controlled":{"fading":{"on_a":true,"good_ms":400,"bad_ms":0,"depth_db":40}}}}`,
			"spine.controlled.fading.bad_ms: must be a positive duration"},
		{"fading bad_ms negative yaml",
			"schema: scenario-v1\nname: x\nspine:\n  controlled:\n    fading:\n      on_a: true\n      good_ms: 400\n      bad_ms: -600\n      depth_db: 40\n",
			"spine.controlled.fading.bad_ms: must be a positive duration"},
		{"mimo out of range",
			`{"schema":"scenario-v1","name":"x","spine":{"controlled":{"mimo_order":7}}}`,
			"spine.controlled.mimo_order: 7 outside [1, 4]"},
		{"ge bad_ms range out of bounds",
			`{"schema":"scenario-v1","name":"x","corpus":{"gilbert_elliott":{"good_ms":[500,2000],"bad_ms":[100,90000],"depth_db":30}}}`,
			"corpus.gilbert_elliott.bad_ms: [100, 90000] outside allowed"},
		{"ge inverted range",
			`{"schema":"scenario-v1","name":"x","corpus":{"gilbert_elliott":{"good_ms":[2000,500],"bad_ms":300,"depth_db":30}}}`,
			"corpus.gilbert_elliott.good_ms: lo 2000 > hi 500"},
		{"mix unknown name",
			`{"schema":"scenario-v1","name":"x","corpus":{"impairments":[{"name":"tsunami","weight":1}]}}`,
			`corpus.impairments: unknown name "tsunami"`},
		{"mix duplicate",
			`{"schema":"scenario-v1","name":"x","corpus":{"devices":[{"name":"pc","weight":1},{"name":"pc","weight":2}]}}`,
			`corpus.devices: duplicate name "pc"`},
		{"mix zero sum",
			`{"schema":"scenario-v1","name":"x","corpus":{"devices":[{"name":"pc","weight":0}]}}`,
			"corpus.devices: weights sum to zero"},
		{"topology region outside office",
			`{"schema":"scenario-v1","name":"x","corpus":{"topology":{"ap_a":{"x":[0,99],"y":[0,5]}}}}`,
			"corpus.topology.ap_a.x"},
		{"arrival pattern unknown",
			`{"schema":"scenario-v1","name":"x","corpus":{"arrivals":{"pattern":"fractal","rate_per_min":3}}}`,
			`corpus.arrivals.pattern: unknown "fractal"`},
		{"arrival rate zero",
			`{"schema":"scenario-v1","name":"x","corpus":{"arrivals":{"pattern":"poisson","rate_per_min":0}}}`,
			"corpus.arrivals.rate_per_min"},
		{"unknown field",
			`{"schema":"scenario-v1","name":"x","corpus":{},"chaos":true}`,
			`unknown field "chaos"`},
		{"trailing content",
			`{"schema":"scenario-v1","name":"x","corpus":{}} {"more":1}`,
			"trailing content"},
		{"empty document", "   \n\t\n", "empty"},
		{"range bad shape",
			`{"schema":"scenario-v1","name":"x","corpus":{"severity":[1,2,3]}}`,
			"want a number or [lo, hi]"},
	}
	for _, c := range cases {
		if _, err := DecodeSpec([]byte(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.wantSub)
		}
	}
}

// TestHashCanonical: semantically equal documents share a hash regardless
// of syntax (YAML vs JSON) or whether defaults are spelled out. The
// generator folds the hash into every stream name, so this is what makes
// "same spec, any encoding" yield the same corpus.
func TestHashCanonical(t *testing.T) {
	minimal := `{"schema":"scenario-v1","name":"c","seed":7,"corpus":{"severity":1}}`
	spelled := `{"schema":"scenario-v1","name":"c","seed":7,"count":1,"profile":"g711","duration_s":120,` +
		`"corpus":{"impairments":[{"name":"none","weight":1},{"name":"weak-link","weight":1},` +
		`{"name":"mobility","weight":1},{"name":"microwave","weight":1},{"name":"congestion","weight":1}],` +
		`"severity":[1,1],"devices":[{"name":"pc","weight":1},{"name":"mobile","weight":1}]}}`
	yaml := "schema: scenario-v1\nname: c\nseed: 7\ncorpus:\n  severity: 1\n"

	hashes := map[string]string{}
	for name, doc := range map[string]string{"minimal": minimal, "spelled": spelled, "yaml": yaml} {
		s, err := DecodeSpec([]byte(doc))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hashes[name] = s.Hash()
	}
	if hashes["minimal"] != hashes["spelled"] || hashes["minimal"] != hashes["yaml"] {
		t.Errorf("hashes differ: %v", hashes)
	}

	other, err := DecodeSpec([]byte(`{"schema":"scenario-v1","name":"c","seed":8,"corpus":{"severity":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if other.Hash() == hashes["minimal"] {
		t.Error("different seed produced the same hash")
	}
}

func TestRangeUnmarshal(t *testing.T) {
	cases := []struct {
		in   string
		want Range
	}{
		{"3", Range{3, 3}},
		{"[3]", Range{3, 3}},
		{"[1, 5.5]", Range{1, 5.5}},
	}
	for _, c := range cases {
		var r Range
		if err := json.Unmarshal([]byte(c.in), &r); err != nil {
			t.Errorf("%s: %v", c.in, err)
		} else if r != c.want {
			t.Errorf("%s: got %+v, want %+v", c.in, r, c.want)
		}
	}
	var r Range
	if err := json.Unmarshal([]byte(`"wide"`), &r); err == nil {
		t.Error(`accepted "wide" as a range`)
	}
	out, err := json.Marshal(Range{1, 5.5})
	if err != nil || string(out) != "[1,5.5]" {
		t.Errorf("marshal = %s, %v; want [1,5.5]", out, err)
	}
}
