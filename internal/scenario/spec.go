// Package scenario is the declarative scenario engine: a versioned
// JSON/YAML spec document ("scenario-v1") compiles into core.Scenario
// values — impairment processes with explicit Gilbert–Elliott parameter
// ranges, microwave duty cycles, congestion cross-traffic, mobility
// traces, AP topologies, diurnal/bursty call-arrival patterns, and
// device-class mixes drawn from the internal/population classes — all
// derived deterministically from the spec hash and seed via the same
// named-stream RNG scheme (internal/sim/rng) the simulator itself uses.
//
// A spec describes either a *spine* (one exactly pinned call — the six
// simtest golden scenarios are each expressible this way, proven by the
// spec-equivalence test in internal/simtest) or a *corpus* (a parameter
// space from which any number of scenarios generate by index). Corpus
// outputs are checked by statistical property, not by golden file: the
// acceptance harness in internal/scenario/stattest runs hundreds of
// generated scenarios under fixed seeds and asserts distributional
// invariants — loss-burst statistics matching the configured
// Gilbert–Elliott ranges, cross-link loss correlation staying in the
// paper's weak-correlation regime (Fig. 4), inter-arrival CDFs, topology
// placement targets — with explicit confidence bounds.
//
// Determinism contract: Generate(i) is a pure function of (normalized
// spec, i). Two textually different but semantically equal documents
// (YAML vs JSON, defaults spelled out or omitted) share a Hash and
// therefore generate identical corpora. See docs/SCENARIOS.md.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/traffic"
)

// SpecSchema is the version tag every spec document must carry.
const SpecSchema = "scenario-v1"

// MaxCount bounds a spec's corpus size; generation is lazy, so the bound
// exists only to catch typos (a billion-scenario corpus is a typo).
const MaxCount = 1_000_000

// Range is a closed interval [Lo, Hi] a generator draws from uniformly.
// In a document it is either a two-element array [lo, hi] or a single
// number n (meaning the degenerate range [n, n]).
type Range struct {
	Lo, Hi float64
}

// UnmarshalJSON accepts 3, [3] and [1, 5].
func (r *Range) UnmarshalJSON(data []byte) error {
	var one float64
	if err := json.Unmarshal(data, &one); err == nil {
		*r = Range{Lo: one, Hi: one}
		return nil
	}
	var pair []float64
	if err := json.Unmarshal(data, &pair); err != nil {
		return fmt.Errorf("want a number or [lo, hi]")
	}
	switch len(pair) {
	case 1:
		*r = Range{Lo: pair[0], Hi: pair[0]}
	case 2:
		*r = Range{Lo: pair[0], Hi: pair[1]}
	default:
		return fmt.Errorf("want a number or [lo, hi], got %d elements", len(pair))
	}
	return nil
}

// MarshalJSON emits the canonical [lo, hi] form.
func (r Range) MarshalJSON() ([]byte, error) {
	return json.Marshal([2]float64{r.Lo, r.Hi})
}

// IsZero reports whether the range was omitted from the document.
func (r Range) IsZero() bool { return r.Lo == 0 && r.Hi == 0 }

// Contains reports whether x lies in [Lo, Hi].
func (r Range) Contains(x float64) bool { return x >= r.Lo && x <= r.Hi }

// Mid returns the range midpoint.
func (r Range) Mid() float64 { return (r.Lo + r.Hi) / 2 }

// validate checks the range against [min, max] bounds, naming the field.
func (r Range) validate(field string, min, max float64) error {
	for _, v := range [2]float64{r.Lo, r.Hi} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("scenario: %s: non-finite bound", field)
		}
	}
	if r.Lo > r.Hi {
		return fmt.Errorf("scenario: %s: lo %g > hi %g", field, r.Lo, r.Hi)
	}
	if r.Lo < min || r.Hi > max {
		return fmt.Errorf("scenario: %s: [%g, %g] outside allowed [%g, %g]",
			field, r.Lo, r.Hi, min, max)
	}
	return nil
}

// Weighted is one (name, weight) entry of a categorical mix.
type Weighted struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// Spec is a parsed, validated scenario-v1 document.
type Spec struct {
	Schema    string  `json:"schema"`
	Name      string  `json:"name"`
	Seed      int64   `json:"seed"`
	Count     int     `json:"count,omitempty"`      // corpus size; default 1
	Profile   string  `json:"profile,omitempty"`    // g711 | highrate
	DurationS float64 `json:"duration_s,omitempty"` // call length; default 120

	// Exactly one of Spine and Corpus is set.
	Spine  *SpineSpec  `json:"spine,omitempty"`
	Corpus *CorpusSpec `json:"corpus,omitempty"`

	// hash is the canonical fingerprint, computed once by normalize; the
	// generator folds it into every per-index stream name.
	hash string
}

// SpineSpec pins one exact call: either a controlled lab scenario or a
// single corpus draw at a named stream — the two forms the simtest golden
// suite uses. With Count > 1, scenario i runs at seed Seed+i.
type SpineSpec struct {
	Controlled *ControlledSpec `json:"controlled,omitempty"`
	Draw       *DrawSpec       `json:"draw,omitempty"`
}

// ControlledSpec is core.ControlledScenario as a document: fixed geometry,
// no shadowing, negligible fading, explicit per-link attenuation, plus an
// optional Gilbert–Elliott override on one link.
type ControlledSpec struct {
	ExtraLossADB float64     `json:"extra_loss_a_db"`
	ExtraLossBDB float64     `json:"extra_loss_b_db"`
	MIMOOrder    int         `json:"mimo_order,omitempty"` // default 1
	Fading       *FadingSpec `json:"fading,omitempty"`
}

// FadingSpec puts explicit Gilbert–Elliott fading on one link. Sojourn
// means are in milliseconds, which the simulator's microsecond clock
// represents exactly for whole-millisecond values (float seconds would
// not: 0.6 s is not an exact float64).
type FadingSpec struct {
	OnA     bool    `json:"on_a"`
	GoodMS  float64 `json:"good_ms"`
	BadMS   float64 `json:"bad_ms"`
	DepthDB float64 `json:"depth_db"`
}

// DrawSpec is one corpus-level draw of the paper's random scenario
// distribution: the impairment class picks the §4 situation, severity
// scales it, and the named stream seeds the draw. Stream "simtest/corpus"
// reproduces the golden suite's derivation exactly.
type DrawSpec struct {
	Impairment string  `json:"impairment"`
	Severity   float64 `json:"severity,omitempty"` // default 1.0
	Stream     string  `json:"stream,omitempty"`   // default "scenario/corpus"
}

// CorpusSpec is a generated scenario space. Every sub-spec is optional;
// omitted dimensions follow the paper's corpus distribution
// (core.RandomScenarioSeverity) unchanged.
type CorpusSpec struct {
	// Impairments weights the impairment mix (default: uniform over all
	// five classes).
	Impairments []Weighted `json:"impairments,omitempty"`
	// Severity scales each scenario's impairment severity (default [1,1]).
	Severity Range `json:"severity,omitempty"`
	// Devices weights the population device-class mix (pc → 2×2 MIMO,
	// mobile → single chain; default 1:1). Classes mirror
	// internal/population's DeviceClass split.
	Devices []Weighted `json:"devices,omitempty"`

	GE         *GESpec         `json:"gilbert_elliott,omitempty"`
	Microwave  *MicrowaveSpec  `json:"microwave,omitempty"`
	Congestion *CongestionSpec `json:"congestion,omitempty"`
	Mobility   *MobilitySpec   `json:"mobility,omitempty"`
	Topology   *TopologySpec   `json:"topology,omitempty"`
	Arrivals   *ArrivalSpec    `json:"arrivals,omitempty"`
}

// GESpec overrides both links' Gilbert–Elliott fade processes with
// explicit parameter ranges: mean Good/Bad sojourns (ms) and fade depth
// (dB). The acceptance harness asserts generated chains reproduce the
// implied duty cycle and burst-length statistics.
type GESpec struct {
	GoodMS  Range `json:"good_ms"`
	BadMS   Range `json:"bad_ms"`
	DepthDB Range `json:"depth_db"`
}

// MicrowaveSpec pins the oven's duty cycle and placement for microwave
// scenarios: the on-interval starts in StartS and lasts DurS (seconds of
// call time); Region bounds the oven's position (default: whole office).
type MicrowaveSpec struct {
	StartS Range       `json:"start_s"`
	DurS   Range       `json:"dur_s"`
	Region *RegionSpec `json:"region,omitempty"`
}

// CongestionSpec overrides congestion cross-traffic intensity: the busy
// fraction and per-attempt collision probability during saturated
// periods, and the probability that both channels are congested.
type CongestionSpec struct {
	Busy     Range   `json:"busy"`
	Hit      Range   `json:"hit"`
	BothProb float64 `json:"both_prob,omitempty"` // default 0.6, as the paper's corpus
}

// MobilitySpec overrides the random-waypoint walk for mobility scenarios.
type MobilitySpec struct {
	SpeedMPS Range `json:"speed_mps"`
	PauseS   Range `json:"pause_s"`
}

// RegionSpec is an axis-aligned rectangle inside the §6.1 office.
type RegionSpec struct {
	X Range `json:"x"`
	Y Range `json:"y"`
}

// TopologySpec overrides AP and client placement — the density axis of
// the generated space. Regions default to the paper's geometry (APs at
// diagonal corners, client anywhere).
type TopologySpec struct {
	APA    *RegionSpec `json:"ap_a,omitempty"`
	APB    *RegionSpec `json:"ap_b,omitempty"`
	Client *RegionSpec `json:"client,omitempty"`
	// MinAPSeparationM redraws AP placements (bounded attempts) until the
	// APs are at least this far apart.
	MinAPSeparationM float64 `json:"min_ap_separation_m,omitempty"`
}

// ArrivalSpec gives the corpus a call-arrival process: scenario i starts
// at the i-th arrival. Patterns: "poisson" (memoryless at RatePerMin),
// "diurnal" (sinusoidal rate with the given peak-to-trough ratio over
// PeriodS, via Lewis thinning), "bursty" (two-phase hyperexponential:
// fraction BurstFrac of gaps are BurstFactor× shorter, preserving the
// overall mean rate).
type ArrivalSpec struct {
	Pattern    string  `json:"pattern"`
	RatePerMin float64 `json:"rate_per_min"`

	// Diurnal knobs.
	PeakToTrough float64 `json:"peak_to_trough,omitempty"` // default 4
	PeriodS      float64 `json:"period_s,omitempty"`       // default 86400

	// Bursty knobs.
	BurstFactor float64 `json:"burst_factor,omitempty"` // default 10
	BurstFrac   float64 `json:"burst_frac,omitempty"`   // default 0.5
}

var specProfiles = map[string]traffic.Profile{
	"g711":     traffic.G711,
	"highrate": traffic.HighRate,
}

var specImpairments = map[string]core.Impairment{
	"none":       core.ImpNone,
	"weak-link":  core.ImpWeakLink,
	"mobility":   core.ImpMobility,
	"microwave":  core.ImpMicrowave,
	"congestion": core.ImpCongestion,
}

// deviceMIMO maps the population device classes onto spatial diversity
// order, the same mapping the sweep engine uses.
var deviceMIMO = map[string]int{"pc": 2, "mobile": 1}

// TrafficProfile returns the spec's traffic profile.
func (s *Spec) TrafficProfile() traffic.Profile { return specProfiles[s.Profile] }

// normalize applies defaults, validates every field (naming it in the
// error), and computes the canonical hash. Called by DecodeSpec.
func (s *Spec) normalize() error {
	if s.Schema != SpecSchema {
		return fmt.Errorf("scenario: schema: got %q, want %q", s.Schema, SpecSchema)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: name: required")
	}
	if s.Count == 0 {
		s.Count = 1
	}
	if s.Count < 0 || s.Count > MaxCount {
		return fmt.Errorf("scenario: count: %d outside [1, %d]", s.Count, MaxCount)
	}
	if s.Profile == "" {
		s.Profile = "g711"
	}
	if _, ok := specProfiles[s.Profile]; !ok {
		return fmt.Errorf("scenario: profile: unknown %q (known: g711, highrate)", s.Profile)
	}
	if s.DurationS == 0 {
		s.DurationS = 120
	}
	if bad := nonFinite(s.DurationS); bad || s.DurationS < 0.1 || s.DurationS > 7200 {
		return fmt.Errorf("scenario: duration_s: %g outside [0.1, 7200]", s.DurationS)
	}
	switch {
	case s.Spine != nil && s.Corpus != nil:
		return fmt.Errorf("scenario: spine and corpus are mutually exclusive")
	case s.Spine != nil:
		if err := s.Spine.validate(); err != nil {
			return err
		}
	case s.Corpus != nil:
		if err := s.Corpus.validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("scenario: spec needs a spine or a corpus section")
	}
	s.hash = s.computeHash()
	return nil
}

func nonFinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

func (sp *SpineSpec) validate() error {
	switch {
	case sp.Controlled != nil && sp.Draw != nil:
		return fmt.Errorf("scenario: spine: controlled and draw are mutually exclusive")
	case sp.Controlled != nil:
		c := sp.Controlled
		for field, v := range map[string]float64{
			"spine.controlled.extra_loss_a_db": c.ExtraLossADB,
			"spine.controlled.extra_loss_b_db": c.ExtraLossBDB,
		} {
			if nonFinite(v) || v < 0 || v > 120 {
				return fmt.Errorf("scenario: %s: %g outside [0, 120]", field, v)
			}
		}
		if c.MIMOOrder == 0 {
			c.MIMOOrder = 1
		}
		if c.MIMOOrder < 1 || c.MIMOOrder > 4 {
			return fmt.Errorf("scenario: spine.controlled.mimo_order: %d outside [1, 4]", c.MIMOOrder)
		}
		if f := c.Fading; f != nil {
			if nonFinite(f.GoodMS) || f.GoodMS <= 0 {
				return fmt.Errorf("scenario: spine.controlled.fading.good_ms: must be a positive duration")
			}
			if nonFinite(f.BadMS) || f.BadMS <= 0 {
				return fmt.Errorf("scenario: spine.controlled.fading.bad_ms: must be a positive duration")
			}
			if nonFinite(f.DepthDB) || f.DepthDB < 1 || f.DepthDB > 80 {
				return fmt.Errorf("scenario: spine.controlled.fading.depth_db: %g outside [1, 80]", f.DepthDB)
			}
		}
		return nil
	case sp.Draw != nil:
		d := sp.Draw
		if _, ok := specImpairments[d.Impairment]; !ok {
			return fmt.Errorf("scenario: spine.draw.impairment: unknown %q", d.Impairment)
		}
		if d.Severity == 0 {
			d.Severity = 1.0
		}
		if nonFinite(d.Severity) || d.Severity < 0.1 || d.Severity > 4 {
			return fmt.Errorf("scenario: spine.draw.severity: %g outside [0.1, 4]", d.Severity)
		}
		if d.Stream == "" {
			d.Stream = "scenario/corpus"
		}
		return nil
	default:
		return fmt.Errorf("scenario: spine needs a controlled or a draw section")
	}
}

// validateMix checks a categorical mix: known names from known, no
// duplicates, non-negative finite weights with a positive sum.
func validateMix(field string, mix []Weighted, known map[string]bool) error {
	seen := map[string]bool{}
	sum := 0.0
	for _, w := range mix {
		if !known[w.Name] {
			return fmt.Errorf("scenario: %s: unknown name %q", field, w.Name)
		}
		if seen[w.Name] {
			return fmt.Errorf("scenario: %s: duplicate name %q", field, w.Name)
		}
		seen[w.Name] = true
		if nonFinite(w.Weight) || w.Weight < 0 {
			return fmt.Errorf("scenario: %s: weight for %q must be finite and >= 0", field, w.Name)
		}
		sum += w.Weight
	}
	if len(mix) > 0 && sum <= 0 {
		return fmt.Errorf("scenario: %s: weights sum to zero", field)
	}
	return nil
}

func (c *CorpusSpec) validate() error {
	impKnown := map[string]bool{}
	for name := range specImpairments {
		impKnown[name] = true
	}
	if err := validateMix("corpus.impairments", c.Impairments, impKnown); err != nil {
		return err
	}
	if len(c.Impairments) == 0 {
		for _, imp := range core.AllImpairments {
			c.Impairments = append(c.Impairments, Weighted{Name: imp.String(), Weight: 1})
		}
	}
	if err := validateMix("corpus.devices", c.Devices,
		map[string]bool{"pc": true, "mobile": true}); err != nil {
		return err
	}
	if len(c.Devices) == 0 {
		c.Devices = []Weighted{{Name: "pc", Weight: 1}, {Name: "mobile", Weight: 1}}
	}
	if c.Severity.IsZero() {
		c.Severity = Range{Lo: 1, Hi: 1}
	}
	if err := c.Severity.validate("corpus.severity", 0.1, 4); err != nil {
		return err
	}
	if g := c.GE; g != nil {
		if err := g.GoodMS.validate("corpus.gilbert_elliott.good_ms", 1, 600_000); err != nil {
			return err
		}
		if err := g.BadMS.validate("corpus.gilbert_elliott.bad_ms", 1, 60_000); err != nil {
			return err
		}
		if err := g.DepthDB.validate("corpus.gilbert_elliott.depth_db", 1, 80); err != nil {
			return err
		}
	}
	if m := c.Microwave; m != nil {
		if err := m.StartS.validate("corpus.microwave.start_s", 0, 7200); err != nil {
			return err
		}
		if err := m.DurS.validate("corpus.microwave.dur_s", 0.1, 7200); err != nil {
			return err
		}
		if m.Region != nil {
			if err := m.Region.validate("corpus.microwave.region"); err != nil {
				return err
			}
		}
	}
	if g := c.Congestion; g != nil {
		if err := g.Busy.validate("corpus.congestion.busy", 0.01, 1); err != nil {
			return err
		}
		if err := g.Hit.validate("corpus.congestion.hit", 0.01, 1); err != nil {
			return err
		}
		if g.BothProb == 0 {
			g.BothProb = 0.6
		}
		if nonFinite(g.BothProb) || g.BothProb < 0 || g.BothProb > 1 {
			return fmt.Errorf("scenario: corpus.congestion.both_prob: %g outside [0, 1]", g.BothProb)
		}
	}
	if m := c.Mobility; m != nil {
		if err := m.SpeedMPS.validate("corpus.mobility.speed_mps", 0.1, 10); err != nil {
			return err
		}
		if err := m.PauseS.validate("corpus.mobility.pause_s", 0, 120); err != nil {
			return err
		}
	}
	if t := c.Topology; t != nil {
		for field, r := range map[string]*RegionSpec{
			"corpus.topology.ap_a":   t.APA,
			"corpus.topology.ap_b":   t.APB,
			"corpus.topology.client": t.Client,
		} {
			if r == nil {
				continue
			}
			if err := r.validate(field); err != nil {
				return err
			}
		}
		diag := math.Hypot(core.OfficeWidthM, core.OfficeHeightM)
		if nonFinite(t.MinAPSeparationM) || t.MinAPSeparationM < 0 || t.MinAPSeparationM >= diag {
			return fmt.Errorf("scenario: corpus.topology.min_ap_separation_m: %g outside [0, %.1f)",
				t.MinAPSeparationM, diag)
		}
	}
	if a := c.Arrivals; a != nil {
		if err := a.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (r *RegionSpec) validate(field string) error {
	if err := r.X.validate(field+".x", 0, core.OfficeWidthM); err != nil {
		return err
	}
	return r.Y.validate(field+".y", 0, core.OfficeHeightM)
}

func (a *ArrivalSpec) validate() error {
	switch a.Pattern {
	case "poisson", "diurnal", "bursty":
	default:
		return fmt.Errorf("scenario: corpus.arrivals.pattern: unknown %q (known: poisson, diurnal, bursty)", a.Pattern)
	}
	if nonFinite(a.RatePerMin) || a.RatePerMin <= 0 || a.RatePerMin > 1e6 {
		return fmt.Errorf("scenario: corpus.arrivals.rate_per_min: %g outside (0, 1e6]", a.RatePerMin)
	}
	if a.Pattern == "diurnal" {
		if a.PeakToTrough == 0 {
			a.PeakToTrough = 4
		}
		if nonFinite(a.PeakToTrough) || a.PeakToTrough < 1 || a.PeakToTrough > 100 {
			return fmt.Errorf("scenario: corpus.arrivals.peak_to_trough: %g outside [1, 100]", a.PeakToTrough)
		}
		if a.PeriodS == 0 {
			a.PeriodS = 86_400
		}
		if nonFinite(a.PeriodS) || a.PeriodS < 60 {
			return fmt.Errorf("scenario: corpus.arrivals.period_s: %g must be >= 60", a.PeriodS)
		}
	}
	if a.Pattern == "bursty" {
		if a.BurstFactor == 0 {
			a.BurstFactor = 10
		}
		if nonFinite(a.BurstFactor) || a.BurstFactor <= 1 || a.BurstFactor > 1000 {
			return fmt.Errorf("scenario: corpus.arrivals.burst_factor: %g outside (1, 1000]", a.BurstFactor)
		}
		if a.BurstFrac == 0 {
			a.BurstFrac = 0.5
		}
		if nonFinite(a.BurstFrac) || a.BurstFrac <= 0 || a.BurstFrac >= 1 {
			return fmt.Errorf("scenario: corpus.arrivals.burst_frac: %g outside (0, 1)", a.BurstFrac)
		}
	}
	return nil
}
