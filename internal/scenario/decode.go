package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// DecodeSpec parses and validates a scenario-v1 document. The syntax is
// sniffed: documents opening with '{' are JSON, everything else is the
// YAML subset (yaml.go). Both routes decode strictly — unknown fields,
// malformed ranges, non-finite numbers, and out-of-range parameters are
// rejected with errors naming the offending field.
func DecodeSpec(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	doc := data
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("scenario: empty spec document")
	}
	if trimmed[0] != '{' {
		v, err := yamlToValue(data)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		doc, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("scenario: internal yaml conversion: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	// A second document (or trailing garbage) is a malformed spec, not an
	// extension point.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse spec: trailing content after document")
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and decodes a spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := DecodeSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Hash returns the spec's canonical fingerprint. Two semantically equal
// documents — YAML or JSON, defaults spelled out or omitted — share a
// hash, and with it a generated corpus: the generator folds the hash into
// every per-index stream name.
func (s *Spec) Hash() string { return s.hash }

// computeHash hashes the normalized document. The normalized Spec's JSON
// encoding is canonical: struct field order is fixed, defaults are filled
// in, and Range always marshals as [lo, hi].
func (s *Spec) computeHash() string {
	doc, err := json.Marshal(s)
	if err != nil {
		// A validated spec always marshals; this is unreachable without a
		// code bug, and hashing must not silently degrade.
		panic(fmt.Sprintf("scenario: marshal normalized spec: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(SpecSchema + "|"))
	h.Write(doc)
	return hex.EncodeToString(h.Sum(nil)[:16])
}
