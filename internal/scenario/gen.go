package scenario

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/sim/rng"
)

// Meta is the cheap-to-compute identity of one generated scenario: the
// axes a sweep groups cells by, derived from the first few draws of the
// index's stream without materializing the full scenario.
type Meta struct {
	Index      int
	Seed       int64 // the scenario's in-simulator seed
	Impairment core.Impairment
	Device     string // "pc" | "mobile"
	MIMOOrder  int
	Severity   float64
}

// DeviceClass returns the population-model class of the drawn device.
func (m Meta) DeviceClass() population.DeviceClass {
	if m.Device == "pc" {
		return population.PC
	}
	return population.Mobile
}

// Generated is one compiled scenario of a spec's corpus.
type Generated struct {
	Meta
	// Start is the scenario's offset in the corpus arrival timeline
	// (zero when the spec has no arrivals section).
	Start sim.Duration
	// Scenario is the fully determined simulated call.
	Scenario core.Scenario
}

// genStream returns the named per-index stream: every draw that shapes
// scenario i comes from a stream keyed by (spec seed, spec hash, i), the
// same named-stream scheme the simulator uses for its substrates.
func (s *Spec) genStream(i int) *rng.Stream {
	return rng.Named(s.Seed, fmt.Sprintf("scenario/%s/gen/%d", s.hash, i))
}

// spineSeed is the pinned seed of spine scenario i: the document seed
// itself for i = 0 (the golden-equivalence case), consecutive seeds after.
func (s *Spec) spineSeed(i int) int64 { return s.Seed + int64(i) }

// MetaAt computes scenario i's identity without building it.
func (s *Spec) MetaAt(i int) Meta {
	if s.Spine != nil {
		sc := s.compileSpine(i)
		return spineMeta(i, sc)
	}
	g := s.genStream(i)
	m, _ := s.corpusMeta(i, g)
	return m
}

func spineMeta(i int, sc core.Scenario) Meta {
	p := sc.Params()
	dev := "mobile"
	if p.MIMOOrder >= 2 {
		dev = "pc"
	}
	return Meta{
		Index:      i,
		Seed:       p.Seed,
		Impairment: p.Impairment,
		Device:     dev,
		MIMOOrder:  p.MIMOOrder,
		Severity:   1,
	}
}

// corpusMeta draws the axes of corpus scenario i from g, leaving g
// positioned for the scenario body draws.
func (s *Spec) corpusMeta(i int, g *rng.Stream) (Meta, *rng.Stream) {
	c := s.Corpus
	m := Meta{
		Index:      i,
		Seed:       int64(g.Uint64()),
		Impairment: specImpairments[drawWeighted(g, c.Impairments)],
		Device:     drawWeighted(g, c.Devices),
		Severity:   drawRange(g, c.Severity),
	}
	m.MIMOOrder = deviceMIMO[m.Device]
	return m, g
}

// Generate compiles scenario i of the spec. It is a pure function of the
// normalized spec and i, safe for concurrent use. The Start field is only
// filled by GenerateAll — computing the i-th arrival alone would cost the
// whole prefix of the arrival process anyway.
func (s *Spec) Generate(i int) Generated {
	if i < 0 {
		panic(fmt.Sprintf("scenario: Generate(%d): negative index", i))
	}
	if s.hash == "" {
		panic("scenario: Generate on an unnormalized spec (use DecodeSpec)")
	}
	if s.Spine != nil {
		sc := s.compileSpine(i)
		return Generated{Meta: spineMeta(i, sc), Scenario: sc}
	}
	g := s.genStream(i)
	m, _ := s.corpusMeta(i, g)
	return Generated{Meta: m, Scenario: s.compileCorpus(m, g)}
}

// GenerateAll compiles the spec's whole corpus (Count scenarios), with
// arrival offsets filled in.
func (s *Spec) GenerateAll() []Generated {
	out := make([]Generated, s.Count)
	starts := s.Arrivals(s.Count)
	for i := range out {
		out[i] = s.Generate(i)
		out[i].Start = starts[i]
	}
	return out
}

func (s *Spec) compileSpine(i int) core.Scenario {
	seed := s.spineSeed(i)
	prof := specProfiles[s.Profile]
	dur := sim.FromSeconds(s.DurationS)
	if c := s.Spine.Controlled; c != nil {
		sc := core.ControlledScenario(seed, prof, dur, c.ExtraLossADB, c.ExtraLossBDB).
			WithMIMO(c.MIMOOrder)
		if f := c.Fading; f != nil {
			sc = sc.WithFading(f.OnA, sim.FromMillis(f.GoodMS), sim.FromMillis(f.BadMS), f.DepthDB)
		}
		return sc
	}
	d := s.Spine.Draw
	return core.RandomScenarioSeverity(rng.Named(seed, d.Stream),
		specImpairments[d.Impairment], prof, seed, d.Severity).
		WithDuration(dur)
}

// compileCorpus builds corpus scenario m: a paper-distribution draw at the
// drawn severity, then the spec's explicit overrides applied field-wise
// through core.ScenarioParams.
func (s *Spec) compileCorpus(m Meta, g *rng.Stream) core.Scenario {
	c := s.Corpus
	prof := specProfiles[s.Profile]
	base := core.RandomScenarioSeverity(g, m.Impairment, prof, m.Seed, m.Severity).
		WithDuration(sim.FromSeconds(s.DurationS))
	p := base.Params()
	p.MIMOOrder = m.MIMOOrder

	if t := c.Topology; t != nil {
		applyTopology(&p, t, g)
	}
	if ge := c.GE; ge != nil {
		for _, l := range [2]*core.ScenarioLink{&p.LinkA, &p.LinkB} {
			l.FadeGood = sim.FromMillis(drawRange(g, ge.GoodMS))
			l.FadeBad = sim.FromMillis(drawRange(g, ge.BadMS))
			l.FadeDepthDB = drawRange(g, ge.DepthDB)
		}
	}
	if mw := c.Microwave; mw != nil && p.Oven {
		if mw.Region != nil {
			p.OvenPos = drawPos(g, mw.Region)
		}
		p.OvenStart = sim.Time(sim.FromSeconds(drawRange(g, mw.StartS)))
		p.OvenDur = sim.FromSeconds(drawRange(g, mw.DurS))
	}
	if cg := c.Congestion; cg != nil && p.CongestA {
		p.CongestBusy = drawRange(g, cg.Busy)
		p.CongestHit = drawRange(g, cg.Hit)
		p.CongestB = g.Float64() < cg.BothProb
	}
	if mb := c.Mobility; mb != nil && p.Mobile {
		p.WalkSpeed = drawRange(g, mb.SpeedMPS)
		p.WalkPause = sim.FromSeconds(drawRange(g, mb.PauseS))
	}
	return core.FromParams(p)
}

// applyTopology draws AP and client placements, honoring the minimum AP
// separation with a bounded deterministic rejection loop (best draw wins
// if the bound is never met).
func applyTopology(p *core.ScenarioParams, t *TopologySpec, g *rng.Stream) {
	if t.APA != nil || t.APB != nil {
		bestA, bestB, bestDist := p.APA, p.APB, -1.0
		for attempt := 0; attempt < 64; attempt++ {
			a, b := p.APA, p.APB
			if t.APA != nil {
				a = drawPos(g, t.APA)
			}
			if t.APB != nil {
				b = drawPos(g, t.APB)
			}
			d := a.DistanceTo(b)
			if d > bestDist {
				bestA, bestB, bestDist = a, b, d
			}
			if d >= t.MinAPSeparationM {
				bestA, bestB = a, b
				break
			}
		}
		p.APA, p.APB = bestA, bestB
	}
	if t.Client != nil {
		p.ClientPos = drawPos(g, t.Client)
	}
}

func drawRange(g *rng.Stream, r Range) float64 {
	if r.Lo == r.Hi {
		return r.Lo
	}
	return r.Lo + g.Float64()*(r.Hi-r.Lo)
}

func drawPos(g *rng.Stream, r *RegionSpec) phy.Position {
	return phy.Position{X: drawRange(g, r.X), Y: drawRange(g, r.Y)}
}

// drawWeighted picks a name from a validated mix (weights sum > 0).
func drawWeighted(g *rng.Stream, mix []Weighted) string {
	sum := 0.0
	for _, w := range mix {
		sum += w.Weight
	}
	x := g.Float64() * sum
	for _, w := range mix {
		x -= w.Weight
		if x < 0 {
			return w.Name
		}
	}
	return mix[len(mix)-1].Name
}

// Arrivals returns the corpus timeline offsets of scenarios 0..n-1: the
// first n arrivals of the spec's arrival process, or all zeros when the
// spec has none. The process draws from its own named stream, so the
// timeline is independent of the per-scenario parameter draws.
func (s *Spec) Arrivals(n int) []sim.Duration {
	out := make([]sim.Duration, n)
	if s.Corpus == nil || s.Corpus.Arrivals == nil {
		return out
	}
	a := s.Corpus.Arrivals
	g := rng.Named(s.Seed, fmt.Sprintf("scenario/%s/arrivals", s.hash))
	meanS := 60 / a.RatePerMin
	t := 0.0
	for i := 0; i < n; i++ {
		switch a.Pattern {
		case "poisson":
			t += g.ExpFloat64() * meanS
		case "bursty":
			// Two-phase hyperexponential preserving the overall mean:
			// a BurstFrac fraction of gaps are BurstFactor× shorter.
			shortMean := meanS / a.BurstFactor
			longMean := (meanS - a.BurstFrac*shortMean) / (1 - a.BurstFrac)
			if g.Float64() < a.BurstFrac {
				t += g.ExpFloat64() * shortMean
			} else {
				t += g.ExpFloat64() * longMean
			}
		case "diurnal":
			// Lewis thinning of the sinusoidal rate r(t) = r0(1 + A sin),
			// A = (P-1)/(P+1) so peak/trough = P.
			amp := (a.PeakToTrough - 1) / (a.PeakToTrough + 1)
			rateMax := (1 / meanS) * (1 + amp)
			for {
				t += g.ExpFloat64() / rateMax
				rate := (1 / meanS) * (1 + amp*math.Sin(2*math.Pi*t/a.PeriodS))
				if g.Float64() < rate/rateMax {
					break
				}
			}
		}
		out[i] = sim.FromSeconds(t)
	}
	return out
}

// ImpairmentMix returns the normalized impairment weights of the spec's
// generated space (spine specs: the single pinned impairment, weight 1).
// The sweep engine uses it to enumerate the cells a scenario axis spans.
func (s *Spec) ImpairmentMix() []Weighted {
	if s.Spine != nil {
		return []Weighted{{Name: s.MetaAt(0).Impairment.String(), Weight: 1}}
	}
	sum := 0.0
	for _, w := range s.Corpus.Impairments {
		sum += w.Weight
	}
	out := make([]Weighted, 0, len(s.Corpus.Impairments))
	for _, w := range s.Corpus.Impairments {
		if w.Weight > 0 {
			out = append(out, Weighted{Name: w.Name, Weight: w.Weight / sum})
		}
	}
	return out
}

// DeviceMix returns the normalized device weights of the generated space.
func (s *Spec) DeviceMix() []Weighted {
	if s.Spine != nil {
		return []Weighted{{Name: s.MetaAt(0).Device, Weight: 1}}
	}
	sum := 0.0
	for _, w := range s.Corpus.Devices {
		sum += w.Weight
	}
	out := make([]Weighted, 0, len(s.Corpus.Devices))
	for _, w := range s.Corpus.Devices {
		if w.Weight > 0 {
			out = append(out, Weighted{Name: w.Name, Weight: w.Weight / sum})
		}
	}
	return out
}
