package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeSpec exercises the full decode path — YAML-subset parse, JSON
// decode, validation — on arbitrary bytes. The contract: never panic,
// never hang; malformed documents (bad syntax, out-of-range Gilbert–
// Elliott parameters, NaN or negative durations) come back as errors; and
// any document that does decode is fully canonical — its hash is stable,
// its re-encoded form decodes to the same hash, and Generate(0) succeeds.
func FuzzDecodeSpec(f *testing.F) {
	seeds := []string{
		// Valid JSON and YAML documents.
		`{"schema":"scenario-v1","name":"c","seed":7,"corpus":{"severity":1}}`,
		`{"schema":"scenario-v1","name":"m","seed":202,"duration_s":5,"spine":{"draw":{"impairment":"microwave","stream":"simtest/corpus"}}}`,
		`{"schema":"scenario-v1","name":"h","seed":606,"duration_s":5,"spine":{"controlled":{"extra_loss_b_db":6,"fading":{"on_a":true,"good_ms":400,"bad_ms":600,"depth_db":40}}}}`,
		corpusDoc,
		"schema: scenario-v1\nname: office\nseed: 42\ncount: 100\ncorpus:\n" +
			"  severity: [0.5, 2]\n  gilbert_elliott:\n    good_ms: [500, 2000]\n    bad_ms: [100, 600]\n    depth_db: 30\n" +
			"  arrivals:\n    pattern: diurnal\n    rate_per_min: 2\n",
		// Malformed: the rejection paths the validator must keep naming.
		`{"schema":"scenario-v1","name":"x","duration_s":-5,"corpus":{}}`,
		"schema: scenario-v1\nname: x\nduration_s: .nan\ncorpus:\n  severity: 1\n",
		`{"schema":"scenario-v1","name":"x","corpus":{"gilbert_elliott":{"good_ms":[2000,500],"bad_ms":300,"depth_db":30}}}`,
		`{"schema":"scenario-v2","name":"x","corpus":{}}`,
		`{"schema":"scenario-v1"`,
		"a:\n\tb: 1",
		"a: [1, 2",
		`{"schema":"scenario-v1","name":"x","corpus":{},"chaos":true}`,
		"- just\n- a\n- sequence\n",
		"\x00\xff\xfe", "{", "[", "---\n", "key: 'unterminated",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpec(data)
		if err != nil {
			return // rejection is a valid outcome; not panicking is the test
		}
		h := s.Hash()
		if h == "" {
			t.Fatal("accepted spec has empty hash")
		}
		// Canonical re-encode: the normalized form must survive a round trip
		// with an identical hash (it is the hash input, after all).
		re, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		s2, err := DecodeSpec(re)
		if err != nil {
			t.Fatalf("re-decode canonical form: %v\ndoc: %s", err, re)
		}
		if s2.Hash() != h {
			t.Fatalf("hash changed across round trip: %s -> %s", h, s2.Hash())
		}
		// An accepted spec must be generable.
		g := s.Generate(0)
		if g.Scenario.PacketCount() <= 0 {
			t.Fatalf("generated scenario has packet count %d", g.Scenario.PacketCount())
		}
	})
}
