// Package traffic defines the workloads of the paper's experiments: the
// G.711-like VoIP stream (64 kbps, 160-byte packets, 20 ms spacing), the
// high-rate interactive stream of §4.5 (5 Mbps, 1000-byte packets, 1.6 ms
// spacing), the RTP-profile lookup used for stream initialization (§5.2.1),
// and the fluid TCP flow used for the coexistence experiment (§6.3).
package traffic

import (
	"fmt"

	"repro/internal/pkt"
	"repro/internal/sim"
)

// Profile characterises a real-time stream: everything DiversiFi needs to
// size AP queues and set switching timers (§5.2.1).
type Profile struct {
	Name        string
	PayloadType int          // RTP payload type (RFC 3551)
	PacketBytes int          // payload size
	Spacing     sim.Duration // inter-packet gap
	Deadline    sim.Duration // MaxTolerableDelay for the WiFi hop
}

// BitrateKbps returns the stream's nominal payload bitrate.
func (p Profile) BitrateKbps() float64 {
	if p.Spacing <= 0 {
		return 0
	}
	return float64(p.PacketBytes*8) / (float64(p.Spacing) / 1e3)
}

// PacketsPerSecond returns the stream's packet rate.
func (p Profile) PacketsPerSecond() float64 {
	if p.Spacing <= 0 {
		return 0
	}
	return 1e6 / float64(p.Spacing)
}

// APQueueLen returns the AP buffer depth DiversiFi requests for this
// profile: Deadline/Spacing (Algorithm 1's APQueueLen), e.g. 100 ms / 20 ms
// = 5 for G.711.
func (p Profile) APQueueLen() int {
	if p.Spacing <= 0 {
		return 1
	}
	n := int(p.Deadline / p.Spacing)
	if n < 1 {
		n = 1
	}
	return n
}

// The paper's two workloads.
var (
	// G711 is the VoIP stream used in almost every experiment.
	G711 = Profile{
		Name:        "G.711",
		PayloadType: 0, // PCMU
		PacketBytes: 160,
		Spacing:     20 * sim.Millisecond,
		Deadline:    100 * sim.Millisecond,
	}
	// HighRate is the §4.5 video/gaming-class stream: 5 Mbps.
	HighRate = Profile{
		Name:        "HighRate5M",
		PayloadType: 34, // H.263 video, closest RFC 3551 analogue
		PacketBytes: 1000,
		Spacing:     1600 * sim.Microsecond,
		Deadline:    100 * sim.Millisecond,
	}
)

// rtpProfiles maps RTP payload types to stream profiles, standing in for
// the RFC 3551 table lookup the paper performs so applications need not be
// modified.
var rtpProfiles = map[int]Profile{
	G711.PayloadType:     G711,
	8:                    {Name: "G.711-A", PayloadType: 8, PacketBytes: 160, Spacing: 20 * sim.Millisecond, Deadline: 100 * sim.Millisecond},
	HighRate.PayloadType: HighRate,
}

// ProfileForPayloadType looks up the profile for an RTP payload type.
func ProfileForPayloadType(pt int) (Profile, error) {
	p, ok := rtpProfiles[pt]
	if !ok {
		return Profile{}, fmt.Errorf("traffic: unknown RTP payload type %d", pt)
	}
	return p, nil
}

// Source emits a CBR stream of packets into a sink on the simulator.
type Source struct {
	Profile  Profile
	StreamID int

	sim     *sim.Simulator
	sink    func(pkt.Packet)
	next    int
	stopped bool
}

// NewSource creates a source for profile; packets go to sink.
func NewSource(s *sim.Simulator, streamID int, profile Profile, sink func(pkt.Packet)) *Source {
	return &Source{Profile: profile, StreamID: streamID, sim: s, sink: sink}
}

// Start begins emission at the current virtual time and keeps emitting
// every Spacing until Stop, for a total of count packets (count <= 0 means
// unbounded).
func (src *Source) Start(count int) {
	var emit func()
	emit = func() {
		if src.stopped || (count > 0 && src.next >= count) {
			return
		}
		p := pkt.Packet{
			StreamID: src.StreamID,
			Seq:      src.next,
			Size:     src.Profile.PacketBytes,
			SentAt:   src.sim.Now(),
		}
		src.next++
		src.sink(p)
		src.sim.After(src.Profile.Spacing, emit)
	}
	emit()
}

// Stop halts emission.
func (src *Source) Stop() { src.stopped = true }

// Emitted returns how many packets the source has produced.
func (src *Source) Emitted() int { return src.next }
