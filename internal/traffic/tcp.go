package traffic

import (
	"repro/internal/sim/rng"

	"repro/internal/phy"
	"repro/internal/sim"
)

// TCPConfig tunes the fluid TCP throughput model used for the coexistence
// experiment (§6.3, Figure 10). The model estimates iperf-style bulk TCP
// goodput over a WiFi link in fixed windows: the link's adapted PHY rate
// times a MAC efficiency, degraded by medium occupancy, by the NIC's
// absences from the channel (DiversiFi's switches), and by random
// run-to-run variation.
type TCPConfig struct {
	WindowSize sim.Duration // accounting window (default 100 ms)
	Efficiency float64      // MAC efficiency: goodput / PHY rate (default 0.62)
	// AbsencePenalty multiplies the absent fraction: leaving the channel
	// costs TCP more than the wall-clock gap (frozen cwnd, RTO risk).
	AbsencePenalty float64
	// NoiseSD is the per-window lognormal-ish multiplicative noise that
	// captures run-to-run variation (default 0.08).
	NoiseSD float64
}

// DefaultTCPConfig returns the calibration used by the experiments.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		WindowSize:     100 * sim.Millisecond,
		Efficiency:     0.62,
		AbsencePenalty: 2.5,
		NoiseSD:        0.08,
	}
}

// TCPThroughputKbps estimates bulk TCP goodput in kbit/s over link during
// [from, to). absent reports the NIC's away-from-channel time within a
// window (pass nil when the NIC never leaves). rng supplies the run's
// variation; use a distinct stream per run.
func TCPThroughputKbps(link *phy.Link, from, to sim.Time, cfg TCPConfig, absent func(a, b sim.Time) sim.Duration, rng *rng.Stream) float64 {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 100 * sim.Millisecond
	}
	if cfg.Efficiency <= 0 {
		cfg.Efficiency = 0.62
	}
	if to <= from {
		return 0
	}
	var totalKbits float64
	var elapsed sim.Duration
	for t := from; t < to; t = t.Add(cfg.WindowSize) {
		end := t.Add(cfg.WindowSize)
		if end > to {
			end = to
		}
		win := end.Sub(t)
		snr := link.RSSIdBm(t) - phy.NoiseFloorDBm
		rate := phy.BestRateForSNR(snr)
		goodput := rate.Mbps * cfg.Efficiency * (1 - link.BusyFraction(t))
		if absent != nil {
			frac := float64(absent(t, end)) / float64(win)
			frac *= cfg.AbsencePenalty
			if frac > 1 {
				frac = 1
			}
			goodput *= 1 - frac
		}
		if cfg.NoiseSD > 0 && rng != nil {
			noise := 1 + rng.NormFloat64()*cfg.NoiseSD
			if noise < 0.3 {
				noise = 0.3
			}
			goodput *= noise
		}
		totalKbits += goodput * 1000 * win.Seconds()
		elapsed += win
	}
	return totalKbits / elapsed.Seconds()
}
