package traffic

import (
	"testing"

	"repro/internal/pkt"
	"repro/internal/sim"
)

func TestProfileDerivedQuantities(t *testing.T) {
	if kbps := G711.BitrateKbps(); kbps != 64 {
		t.Errorf("G.711 bitrate = %v kbps, want 64", kbps)
	}
	if pps := G711.PacketsPerSecond(); pps != 50 {
		t.Errorf("G.711 pps = %v, want 50", pps)
	}
	if q := G711.APQueueLen(); q != 5 {
		t.Errorf("G.711 AP queue len = %d, want 5 (Algorithm 1)", q)
	}
	if kbps := HighRate.BitrateKbps(); kbps != 5000 {
		t.Errorf("high-rate bitrate = %v kbps, want 5000", kbps)
	}
	var zero Profile
	if zero.BitrateKbps() != 0 || zero.PacketsPerSecond() != 0 || zero.APQueueLen() != 1 {
		t.Error("zero profile should degrade gracefully")
	}
}

func TestProfileForPayloadType(t *testing.T) {
	p, err := ProfileForPayloadType(0)
	if err != nil || p.Name != "G.711" {
		t.Errorf("PT 0 lookup = %v, %v", p.Name, err)
	}
	if _, err := ProfileForPayloadType(77); err == nil {
		t.Error("unknown payload type should error")
	}
}

func TestSourceEmission(t *testing.T) {
	s := sim.New(1)
	var seqs []int
	var times []sim.Time
	src := NewSource(s, 1, G711, func(p pkt.Packet) {
		seqs = append(seqs, p.Seq)
		times = append(times, p.SentAt)
		if p.Size != 160 || p.StreamID != 1 {
			t.Errorf("bad packet %+v", p)
		}
	})
	s.Schedule(0, func() { src.Start(10) })
	s.RunAll()
	if len(seqs) != 10 {
		t.Fatalf("emitted %d, want 10", len(seqs))
	}
	for i := range seqs {
		if seqs[i] != i {
			t.Fatalf("sequence gap: %v", seqs)
		}
		if times[i] != sim.Time(i)*sim.Time(20*sim.Millisecond) {
			t.Fatalf("packet %d at %v", i, times[i])
		}
	}
	if src.Emitted() != 10 {
		t.Errorf("Emitted = %d", src.Emitted())
	}
}

func TestSourceStop(t *testing.T) {
	s := sim.New(2)
	count := 0
	var src *Source
	src = NewSource(s, 1, G711, func(p pkt.Packet) {
		count++
		if count == 3 {
			src.Stop()
		}
	})
	s.Schedule(0, func() { src.Start(0) }) // unbounded
	s.Run(sim.Time(10 * sim.Second))
	if count != 3 {
		t.Errorf("emitted %d after Stop, want 3", count)
	}
}

func TestTwoMinuteCallPacketCount(t *testing.T) {
	// The paper's 2-minute G.711 call is 6000 packets (§4.2).
	s := sim.New(3)
	count := 0
	src := NewSource(s, 1, G711, func(pkt.Packet) { count++ })
	s.Schedule(0, func() { src.Start(6000) })
	s.Run(sim.Time(2 * sim.Minute))
	if count != 6000 {
		t.Errorf("2-minute call = %d packets, want 6000", count)
	}
}
