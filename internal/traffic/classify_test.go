package traffic

import (
	"testing"

	"repro/internal/rtp"
)

func TestClassifyRTP(t *testing.T) {
	pkt := rtp.Packet{
		Header:  rtp.Header{PayloadType: 0, Sequence: 1, SSRC: 0xabcd},
		Payload: make([]byte, 160),
	}
	wire, err := pkt.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	prof, ssrc, ok := ClassifyRTP(wire)
	if !ok {
		t.Fatal("valid G.711 RTP not classified")
	}
	if prof.Name != "G.711" || ssrc != 0xabcd {
		t.Fatalf("classified as %v / %x", prof.Name, ssrc)
	}
}

func TestClassifyRTPUnknownPayloadType(t *testing.T) {
	pkt := rtp.Packet{Header: rtp.Header{PayloadType: 99}}
	wire, _ := pkt.Marshal(nil)
	if _, _, ok := ClassifyRTP(wire); ok {
		t.Error("unknown payload type classified as real-time")
	}
}

func TestClassifyRTPGarbage(t *testing.T) {
	if _, _, ok := ClassifyRTP([]byte("not rtp")); ok {
		t.Error("garbage classified as RTP")
	}
	if _, _, ok := ClassifyRTP(nil); ok {
		t.Error("nil classified as RTP")
	}
}
