package traffic

import (
	"repro/internal/sim/rng"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

func tcpLink(extra float64) *phy.Link {
	rng := rng.New(1)
	return phy.NewLink(rng, phy.NewEnvironment(), phy.LinkParams{
		APPos: phy.Position{X: 0, Y: 0}, Chan: phy.Chan1,
		Client:   phy.Static{Pos: phy.Position{X: 8, Y: 0}},
		ShadowDB: 0,
		FadeGood: 100 * sim.Minute, FadeBad: sim.Millisecond,
		ExtraLoss: extra,
	})
}

func TestTCPThroughputPositive(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.NoiseSD = 0 // deterministic for the test
	kbps := TCPThroughputKbps(tcpLink(0), 0, sim.Time(10*sim.Second), cfg, nil, nil)
	if kbps <= 0 {
		t.Fatalf("throughput = %v", kbps)
	}
	// A clean short link runs at the top MCS: 65 Mbps × 0.62 ≈ 40 Mbps.
	if kbps < 30_000 || kbps > 45_000 {
		t.Errorf("clean-link TCP = %.1f Mbps, want ≈40", kbps/1000)
	}
}

func TestTCPThroughputDegradesWithWeakLink(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.NoiseSD = 0
	strong := TCPThroughputKbps(tcpLink(0), 0, sim.Time(10*sim.Second), cfg, nil, nil)
	weak := TCPThroughputKbps(tcpLink(30), 0, sim.Time(10*sim.Second), cfg, nil, nil)
	if weak >= strong {
		t.Errorf("weak link %.0f not below strong %.0f", weak, strong)
	}
}

func TestTCPAbsencePenalty(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.NoiseSD = 0
	full := TCPThroughputKbps(tcpLink(0), 0, sim.Time(10*sim.Second), cfg, nil, nil)
	// The NIC is absent 1% of every window.
	absent := func(a, b sim.Time) sim.Duration { return (b - a).Sub(0) / 100 }
	reduced := TCPThroughputKbps(tcpLink(0), 0, sim.Time(10*sim.Second), cfg, absent, nil)
	if reduced >= full {
		t.Fatal("absence did not reduce throughput")
	}
	// With penalty 2.5, a 1% absence costs ~2.5%.
	frac := reduced / full
	if frac < 0.97 || frac > 0.98+1e-9 {
		t.Errorf("1%% absence left %.4f of throughput, want ≈0.975", frac)
	}
}

func TestTCPAbsenceClamped(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.NoiseSD = 0
	// Fully absent: throughput must clamp at zero, not go negative.
	absent := func(a, b sim.Time) sim.Duration { return b.Sub(a) }
	kbps := TCPThroughputKbps(tcpLink(0), 0, sim.Time(5*sim.Second), cfg, absent, nil)
	if kbps != 0 {
		t.Errorf("fully-absent throughput = %v, want 0", kbps)
	}
}

func TestTCPDegenerateInputs(t *testing.T) {
	cfg := DefaultTCPConfig()
	if TCPThroughputKbps(tcpLink(0), 100, 100, cfg, nil, nil) != 0 {
		t.Error("empty interval should yield 0")
	}
	if TCPThroughputKbps(tcpLink(0), 100, 50, cfg, nil, nil) != 0 {
		t.Error("reversed interval should yield 0")
	}
	// Zero-value config picks sane defaults rather than dividing by zero.
	kbps := TCPThroughputKbps(tcpLink(0), 0, sim.Time(sim.Second), TCPConfig{}, nil, nil)
	if kbps <= 0 {
		t.Errorf("zero-config throughput = %v", kbps)
	}
}

func TestTCPNoiseIsSeedDeterministic(t *testing.T) {
	cfg := DefaultTCPConfig()
	a := TCPThroughputKbps(tcpLink(0), 0, sim.Time(5*sim.Second), cfg, nil, rng.New(9))
	b := TCPThroughputKbps(tcpLink(0), 0, sim.Time(5*sim.Second), cfg, nil, rng.New(9))
	if a != b {
		t.Error("same seed produced different noisy throughput")
	}
	c := TCPThroughputKbps(tcpLink(0), 0, sim.Time(5*sim.Second), cfg, nil, rng.New(10))
	if a == c {
		t.Error("different seeds produced identical noise")
	}
}
