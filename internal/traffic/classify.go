package traffic

import "repro/internal/rtp"

// ClassifyRTP implements §5.2.1's application-transparent stream
// initialization: given a raw UDP payload, it checks whether the bytes
// parse as an RTP packet whose payload type maps to a known real-time
// profile. On success it returns the profile and the stream's SSRC, which
// DiversiFi uses as the replication-rule key.
func ClassifyRTP(data []byte) (Profile, uint32, bool) {
	p, err := rtp.Parse(data)
	if err != nil {
		return Profile{}, 0, false
	}
	prof, err := ProfileForPayloadType(int(p.PayloadType))
	if err != nil {
		return Profile{}, 0, false
	}
	return prof, p.SSRC, true
}
