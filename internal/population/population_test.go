package population

import (
	"repro/internal/sim/rng"
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Calls = 200_000
	cfg.Subnets = 200
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rng.New(1), smallConfig())
	b := Generate(rng.New(1), smallConfig())
	if a.RatedCalls() != b.RatedCalls() {
		t.Fatal("same seed produced different populations")
	}
	if a.OverallPCR() != b.OverallPCR() {
		t.Fatal("same seed produced different PCR")
	}
}

func TestTable1Shape(t *testing.T) {
	m := Generate(rng.New(2), smallConfig())
	rows := m.Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	r1 := rows[0]
	// Row 1 orderings from the paper: EE best, WW worst, EW between.
	if !(r1.EE > r1.EW && r1.EW > r1.WW) {
		t.Errorf("row 1 ordering violated: EE %+.1f EW %+.1f WW %+.1f", r1.EE, r1.EW, r1.WW)
	}
	if r1.EE <= 0 {
		t.Errorf("EE delta %+.1f should be positive (better than baseline)", r1.EE)
	}
	if r1.WW >= 0 {
		t.Errorf("WW delta %+.1f should be negative (worse than baseline)", r1.WW)
	}
	// The first three rows keep a WiFi gap: EE strictly better than WW.
	// (Row 4's doubly-filtered WW subset is small enough to be noisy at
	// test-sized populations, so it is only checked for existence.)
	for i, r := range rows[:3] {
		if r.EE <= r.WW {
			t.Errorf("row %d lost the WiFi gap: EE %+.1f vs WW %+.1f", i+1, r.EE, r.WW)
		}
	}
	// The filters improve the WW category monotonically-ish: row 3 (PC)
	// must beat row 1.
	if rows[2].WW <= rows[0].WW {
		t.Errorf("PC filter did not improve WW: %+.1f vs %+.1f", rows[2].WW, rows[0].WW)
	}
}

func TestRelativeDelta(t *testing.T) {
	if d := RelativeDelta(0.10, 0.08); d < 19.999 || d > 20.001 {
		t.Errorf("delta = %v, want +20", d)
	}
	if d := RelativeDelta(0.10, 0.15); d < -50.001 || d > -49.999 {
		t.Errorf("delta = %v, want -50", d)
	}
	if RelativeDelta(0, 0.5) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestRatingBiasOversamplesPoorCalls(t *testing.T) {
	// With the response bias on, the rated-call PCR exceeds the PCR of a
	// population rated uniformly at random.
	biased := Generate(rng.New(3), smallConfig())
	flat := smallConfig()
	flat.RatingBias = 0
	unbiased := Generate(rng.New(3), flat)
	if biased.OverallPCR() <= unbiased.OverallPCR() {
		t.Errorf("bias did not raise rated PCR: %v vs %v",
			biased.OverallPCR(), unbiased.OverallPCR())
	}
}

func TestWiFiPenaltyDrivesGap(t *testing.T) {
	// Removing the intrinsic WiFi penalty must shrink the EE↔WW gap.
	withCfg := smallConfig()
	withoutCfg := smallConfig()
	withoutCfg.WiFiPenalty = 0
	with := Generate(rng.New(4), withCfg).Table1()[0]
	without := Generate(rng.New(4), withoutCfg).Table1()[0]
	gapWith := with.EE - with.WW
	gapWithout := without.EE - without.WW
	if gapWithout >= gapWith {
		t.Errorf("WiFi penalty removal did not shrink gap: %v vs %v", gapWithout, gapWith)
	}
}

func TestCategorize(t *testing.T) {
	e := endpoint{hop: Ethernet}
	w := endpoint{hop: WiFi}
	if categorize(e, e) != EE || categorize(e, w) != EW || categorize(w, e) != EW || categorize(w, w) != WW {
		t.Error("categorize broken")
	}
	if EE.String() != "EE" || EW.String() != "EW" || WW.String() != "WW" {
		t.Error("category strings broken")
	}
}
