// Package population reproduces the §3.1 analysis of a year of calls from
// a large VoIP service (Table 1). The proprietary dataset is observational
// — user ratings of calls between endpoints whose last hop is Ethernet or
// WiFi — so the substitute is a statistical call-population model: subnets
// with heterogeneous backhaul, devices of different classes, an intrinsic
// WiFi last-hop penalty, and a rating model with response bias. The
// experiment then applies exactly the paper's methodology: relative PCR
// differences for EE/EW/WW under the paper's four subset filters.
package population

import (
	"repro/internal/sim/rng"
)

// LastHop is an endpoint's access-link type.
type LastHop int

const (
	Ethernet LastHop = iota
	WiFi
)

// DeviceClass separates PC-class devices from low-end mobile hardware.
type DeviceClass int

const (
	PC DeviceClass = iota
	Mobile
)

// SubnetType drives backhaul quality and endpoint composition.
type SubnetType int

const (
	EnterpriseSubnet SubnetType = iota
	HomeSubnet
	PublicSubnet
)

// Config tunes the population model. Defaults reproduce Table 1's
// qualitative structure.
type Config struct {
	Subnets int // number of /24 subnets
	Calls   int // total calls to simulate

	// Mean per-call MOS penalties by cause. Backhaul penalties are
	// per-subnet means (exponentially distributed across subnets).
	EnterpriseBackhaul float64
	HomeBackhaul       float64
	PublicBackhaul     float64
	// WiFiPenalty is the mean of the intrinsic WiFi last-hop penalty —
	// the effect the paper is isolating.
	WiFiPenalty float64
	// MobilePenalty is the mean hardware penalty of low-end devices.
	MobilePenalty float64

	// CommonNoise is the mean of the per-call penalty every call risks
	// regardless of access type (WAN congestion, codec glitches, peer
	// CPU) — the common-cause floor the WiFi effect is measured against.
	CommonNoise float64

	// RatingBias makes users more likely to rate bad calls.
	RatingBaseProb float64
	RatingBias     float64
}

// DefaultConfig returns the calibrated model.
func DefaultConfig() Config {
	return Config{
		Subnets:            400,
		Calls:              200_000,
		EnterpriseBackhaul: 0.06,
		HomeBackhaul:       0.16,
		PublicBackhaul:     0.55,
		WiFiPenalty:        0.12,
		MobilePenalty:      0.12,
		CommonNoise:        0.85,
		RatingBaseProb:     0.05,
		RatingBias:         0.06,
	}
}

// subnet is a /24 with a backhaul-quality mean and an endpoint mix.
type subnet struct {
	typ      SubnetType
	backhaul float64 // mean MOS penalty of this subnet's backhaul
}

// endpoint is one call participant.
type endpoint struct {
	sub    int
	hop    LastHop
	device DeviceClass
}

// ratedCall is one user-rated call observation.
type ratedCall struct {
	a, b  endpoint
	poor  bool
	subLo int // ordered subnet pair key
	subHi int
}

// Category classifies a call by its endpoints' last hops.
type Category int

const (
	EE Category = iota
	EW
	WW
)

func (c Category) String() string {
	switch c {
	case EE:
		return "EE"
	case EW:
		return "EW"
	default:
		return "WW"
	}
}

func categorize(a, b endpoint) Category {
	e := 0
	if a.hop == Ethernet {
		e++
	}
	if b.hop == Ethernet {
		e++
	}
	switch e {
	case 2:
		return EE
	case 1:
		return EW
	default:
		return WW
	}
}

// Model is a generated call population.
type Model struct {
	cfg     Config
	subnets []subnet
	calls   []ratedCall
}

// Generate builds the population and simulates the year of rated calls.
func Generate(rng *rng.Stream, cfg Config) *Model {
	m := &Model{cfg: cfg}
	for i := 0; i < cfg.Subnets; i++ {
		r := rng.Float64()
		var s subnet
		switch {
		case r < 0.35:
			s = subnet{EnterpriseSubnet, rng.ExpFloat64() * cfg.EnterpriseBackhaul}
		case r < 0.80:
			s = subnet{HomeSubnet, rng.ExpFloat64() * cfg.HomeBackhaul}
		default:
			s = subnet{PublicSubnet, rng.ExpFloat64() * cfg.PublicBackhaul}
		}
		m.subnets = append(m.subnets, s)
	}
	for i := 0; i < cfg.Calls; i++ {
		a := m.drawEndpoint(rng)
		b := m.drawEndpoint(rng)
		mos := m.callMOS(rng, a, b)
		// Users rate a random subset of calls, preferring to vent about
		// bad ones (§3.1's noted response bias).
		pRate := cfg.RatingBaseProb
		if mos < 3.0 {
			pRate += cfg.RatingBias
		}
		if rng.Float64() >= pRate {
			continue
		}
		lo, hi := a.sub, b.sub
		if lo > hi {
			lo, hi = hi, lo
		}
		m.calls = append(m.calls, ratedCall{
			a: a, b: b,
			poor:  mos < 2.9, // the two lowest points of the 5-point scale
			subLo: lo, subHi: hi,
		})
	}
	return m
}

// drawEndpoint picks a subnet and an endpoint consistent with its type.
func (m *Model) drawEndpoint(rng *rng.Stream) endpoint {
	i := rng.Intn(len(m.subnets))
	s := m.subnets[i]
	var hop LastHop
	var dev DeviceClass
	switch s.typ {
	case EnterpriseSubnet:
		// Mostly PCs; half wired.
		dev = PC
		if rng.Float64() < 0.25 {
			dev = Mobile
		}
		hop = Ethernet
		if dev == Mobile || rng.Float64() < 0.45 {
			hop = WiFi
		}
	case HomeSubnet:
		dev = PC
		if rng.Float64() < 0.45 {
			dev = Mobile
		}
		hop = Ethernet
		if dev == Mobile || rng.Float64() < 0.70 {
			hop = WiFi
		}
	default: // public
		dev = Mobile
		if rng.Float64() < 0.25 {
			dev = PC
		}
		hop = WiFi
	}
	return endpoint{sub: i, hop: hop, device: dev}
}

// callMOS draws the call's quality.
func (m *Model) callMOS(rng *rng.Stream, a, b endpoint) float64 {
	mos := 4.4
	for _, e := range []endpoint{a, b} {
		mos -= rng.ExpFloat64() * m.subnets[e.sub].backhaul
		if e.hop == WiFi {
			mos -= rng.ExpFloat64() * m.cfg.WiFiPenalty
		}
		if e.device == Mobile {
			mos -= rng.ExpFloat64() * m.cfg.MobilePenalty
		}
	}
	mos -= rng.ExpFloat64() * m.cfg.CommonNoise // WAN path, codec, peer CPU
	if mos < 1 {
		mos = 1
	}
	return mos
}

// Filter selects a subset of the rated calls, mirroring Table 1's rows.
type Filter struct {
	// PCOnly keeps calls where both devices are PC-class (rows 3–4).
	PCOnly bool
	// BalancedSubnets keeps calls within /24 pairs that have at least as
	// many EE data points as WW (rows 2 and 4).
	BalancedSubnets bool
}

type pairKey struct{ lo, hi int }

// pcrByCategory computes the PCR of each category over the filtered calls,
// plus the overall baseline PCR of that filtered set.
func (m *Model) pcrByCategory(f Filter) (all float64, byCat map[Category]float64) {
	calls := m.calls
	if f.PCOnly {
		kept := calls[:0:0]
		for _, c := range calls {
			if c.a.device == PC && c.b.device == PC {
				kept = append(kept, c)
			}
		}
		calls = kept
	}
	if f.BalancedSubnets {
		type counts struct{ ee, ww int }
		tally := map[pairKey]*counts{}
		for _, c := range calls {
			k := pairKey{c.subLo, c.subHi}
			t := tally[k]
			if t == nil {
				t = &counts{}
				tally[k] = t
			}
			switch categorize(c.a, c.b) {
			case EE:
				t.ee++
			case WW:
				t.ww++
			}
		}
		kept := calls[:0:0]
		for _, c := range calls {
			t := tally[pairKey{c.subLo, c.subHi}]
			if t != nil && t.ee >= t.ww {
				kept = append(kept, c)
			}
		}
		calls = kept
	}

	poorTotal, total := 0, 0
	poorCat := map[Category]int{}
	catTotal := map[Category]int{}
	for _, c := range calls {
		cat := categorize(c.a, c.b)
		total++
		catTotal[cat]++
		if c.poor {
			poorTotal++
			poorCat[cat]++
		}
	}
	byCat = map[Category]float64{}
	for cat, n := range catTotal {
		if n > 0 {
			byCat[cat] = float64(poorCat[cat]) / float64(n)
		}
	}
	if total > 0 {
		all = float64(poorTotal) / float64(total)
	}
	return all, byCat
}

// RelativeDelta is the paper's PCRΔ metric: (PCRall − PCRx)/PCRall × 100%,
// positive meaning better (lower) than baseline.
func RelativeDelta(all, x float64) float64 {
	if all == 0 {
		return 0
	}
	return (all - x) / all * 100
}

// Row is one row of Table 1.
type Row struct {
	Label      string
	EE, EW, WW float64 // relative PCR deltas, percent
}

// Table1 applies the paper's four filters and returns the four rows.
// The baseline PCRall of each row is computed over that row's subset, as
// the paper does (each row reports deltas "relative to the baseline").
func (m *Model) Table1() []Row {
	rows := []struct {
		label string
		f     Filter
	}{
		{"All", Filter{}},
		{"/24s with #E>=#W", Filter{BalancedSubnets: true}},
		{"PC", Filter{PCOnly: true}},
		{"PC, /24s with #E>=#W", Filter{PCOnly: true, BalancedSubnets: true}},
	}
	// Per the paper, rows 2–4 compare against the all-calls baseline so
	// that "the PCR improves across the board" is visible.
	allBase, _ := m.pcrByCategory(Filter{})
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		_, byCat := m.pcrByCategory(r.f)
		out = append(out, Row{
			Label: r.label,
			EE:    RelativeDelta(allBase, byCat[EE]),
			EW:    RelativeDelta(allBase, byCat[EW]),
			WW:    RelativeDelta(allBase, byCat[WW]),
		})
	}
	return out
}

// RatedCalls returns the number of rated calls in the model.
func (m *Model) RatedCalls() int { return len(m.calls) }

// OverallPCR returns the PCR over all rated calls.
func (m *Model) OverallPCR() float64 {
	all, _ := m.pcrByCategory(Filter{})
	return all
}
