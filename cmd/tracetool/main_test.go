package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/analyze"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// exec runs the CLI entry point and captures its streams.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, strings.NewReader(""), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// TestGoldenOutputs pins the exact bytes of every subcommand's text and JSON
// output over the checked-in fixture traces. Regenerate after a deliberate
// format change with
//
//	go test ./cmd/tracetool -run TestGoldenOutputs -update
//
// and review the diff like any other contract change.
func TestGoldenOutputs(t *testing.T) {
	sample := filepath.Join("testdata", "sample.trace.jsonl")
	dirty := filepath.Join("testdata", "dirty.trace.jsonl")
	fleet := filepath.Join("testdata", "fleet.trace.jsonl")
	fleetDirty := filepath.Join("testdata", "fleet-dirty.trace.jsonl")
	sloTrace := filepath.Join("testdata", "slo.trace.jsonl")
	sloDirty := filepath.Join("testdata", "slo-dirty.trace.jsonl")
	// A real simulation trace, pinned by the simtest golden harness: the
	// chrome export of a byte-stable input must itself be byte-stable.
	simtrace := filepath.Join("..", "..", "internal", "simtest", "testdata", "head-drop-recovery.trace.jsonl")
	cases := []struct {
		golden   string
		args     []string
		wantCode int
	}{
		{"episodes.txt", []string{"episodes", sample}, 0},
		{"episodes.json", []string{"episodes", "-json", sample}, 0},
		{"summary.txt", []string{"summary", sample}, 0},
		{"summary.json", []string{"summary", "-json", sample}, 0},
		{"series.txt", []string{"series", "-window", "50ms", sample}, 0},
		{"lint.txt", []string{"lint", sample, dirty}, 1},
		{"chrome.json", []string{"export", "-format", "chrome", sample}, 0},
		{"chrome-head-drop.json", []string{"export", simtrace}, 0},
		{"fleet.txt", []string{"fleet", fleet}, 0},
		{"fleet.json", []string{"fleet", "-json", fleet}, 0},
		{"fleet-dirty.txt", []string{"fleet", fleet, fleetDirty}, 1},
		{"fleet-chrome.json", []string{"fleet", "-export", "chrome", fleet}, 0},
		{"slo.txt", []string{"slo", sloTrace}, 0},
		{"slo.json", []string{"slo", "-json", sloTrace}, 0},
		{"slo-dirty.txt", []string{"slo", sloTrace, sloDirty}, 1},
		{"slo-chrome.json", []string{"slo", "-export", "chrome", sloTrace}, 0},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			code, out, errOut := exec(t, c.args...)
			if code != c.wantCode {
				t.Fatalf("exit = %d, want %d (stderr: %s)", code, c.wantCode, errOut)
			}
			path := filepath.Join("testdata", c.golden)
			if *update {
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if out != string(want) {
				t.Errorf("output differs from %s — if intended, re-run with -update and review\ngot:\n%s\nwant:\n%s",
					path, out, want)
			}
		})
	}
}

func TestLintExitCodes(t *testing.T) {
	if code, _, _ := exec(t, "lint", filepath.Join("testdata", "sample.trace.jsonl")); code != 0 {
		t.Errorf("lint on clean trace exited %d", code)
	}
	if code, _, _ := exec(t, "lint", filepath.Join("testdata", "dirty.trace.jsonl")); code != 1 {
		t.Errorf("lint on dirty trace exited %d, want 1", code)
	}
	if code, _, _ := exec(t, "lint", filepath.Join("testdata", "no-such-file.jsonl")); code != 1 {
		t.Errorf("lint on missing file exited %d, want 1", code)
	}
	if code, _, _ := exec(t); code != 2 {
		t.Errorf("no-args exited %d, want 2", code)
	}
	if code, _, _ := exec(t, "frobnicate"); code != 2 {
		t.Errorf("unknown command exited %d, want 2", code)
	}
	if code, _, _ := exec(t, "help"); code != 0 {
		t.Errorf("help exited %d, want 0", code)
	}
}

func TestStdinInput(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "sample.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code := run([]string{"lint", "-"}, bytes.NewReader(data), &out, &out)
	if code != 0 || !strings.Contains(out.String(), "clean") {
		t.Fatalf("lint over stdin: code %d, out %q", code, out.String())
	}
}

func TestExportToFileAndErrors(t *testing.T) {
	sample := filepath.Join("testdata", "sample.trace.jsonl")
	outPath := filepath.Join(t.TempDir(), "trace.json")
	code, stdout, stderr := exec(t, "export", "-o", outPath, sample)
	if code != 0 || stdout != "" {
		t.Fatalf("export -o: code %d, stdout %q, stderr %q", code, stdout, stderr)
	}
	written, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "chrome.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(written, golden) {
		t.Error("export -o output differs from stdout golden")
	}

	if code, _, stderr := exec(t, "export", "-format", "svg", sample); code != 2 ||
		!strings.Contains(stderr, "unknown export format") {
		t.Errorf("bad format: code %d, stderr %q", code, stderr)
	}
	if code, _, _ := exec(t, "export", sample, sample); code != 2 {
		t.Errorf("two files: code %d, want usage error", code)
	}
	if code, _, stderr := exec(t, "export", filepath.Join("testdata", "no-such.jsonl")); code != 1 ||
		stderr == "" {
		t.Errorf("missing file: code %d, stderr %q", code, stderr)
	}
}

// simtestGoldens returns the seeded-equivalence golden traces checked in
// under internal/simtest/testdata.
func simtestGoldens(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "internal", "simtest", "testdata", "*.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 6 {
		t.Fatalf("expected the six simtest golden traces, found %d: %v", len(paths), paths)
	}
	return paths
}

// TestSimtestGoldensLintClean is the acceptance gate: every golden trace of
// the seeded-equivalence harness passes the linter.
func TestSimtestGoldensLintClean(t *testing.T) {
	code, out, errOut := exec(t, append([]string{"lint"}, simtestGoldens(t)...)...)
	if code != 0 {
		t.Fatalf("lint over simtest goldens exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

// TestSimtestGoldenEpisodesMatchMetrics is the acceptance gate for episode
// reconstruction: `tracetool episodes -json` over each golden trace must
// reproduce that scenario's metric snapshot bit-identically —
// client.recovery_switches / client.keepalive_switches as episode counts,
// the client.recovery_delay_us histogram's count/min/max as the
// switch→first-retrieval delay stats, and client.recovered /
// client.playout_misses as the retrieval totals.
func TestSimtestGoldenEpisodesMatchMetrics(t *testing.T) {
	for _, tracePath := range simtestGoldens(t) {
		name := strings.TrimSuffix(filepath.Base(tracePath), ".trace.jsonl")
		t.Run(name, func(t *testing.T) {
			code, out, errOut := exec(t, "episodes", "-json", tracePath)
			if code != 0 {
				t.Fatalf("episodes exited %d: %s", code, errOut)
			}
			var got struct {
				Recoveries    int64              `json:"recoveries"`
				Keepalives    int64              `json:"keepalives"`
				Unclosed      int64              `json:"unclosed"`
				Retrieved     int64              `json:"retrieved"`
				RecoveryDelay analyze.DelayStats `json:"recovery_delay"`
			}
			if err := json.Unmarshal([]byte(out), &got); err != nil {
				t.Fatalf("parse episodes JSON: %v", err)
			}

			metricsPath := strings.TrimSuffix(tracePath, ".trace.jsonl") + ".metrics.json"
			data, err := os.ReadFile(metricsPath)
			if err != nil {
				t.Fatal(err)
			}
			var metrics struct {
				Counters   map[string]int64 `json:"counters"`
				Histograms map[string]struct {
					Count int64 `json:"count"`
					Min   int64 `json:"min"`
					Max   int64 `json:"max"`
				} `json:"histograms"`
			}
			if err := json.Unmarshal(data, &metrics); err != nil {
				t.Fatal(err)
			}

			if want := metrics.Counters["client.recovery_switches"]; got.Recoveries != want {
				t.Errorf("recoveries = %d, metrics say %d", got.Recoveries, want)
			}
			if want := metrics.Counters["client.keepalive_switches"]; got.Keepalives != want {
				t.Errorf("keepalives = %d, metrics say %d", got.Keepalives, want)
			}
			if want := metrics.Counters["client.recovered"]; got.Retrieved != want {
				t.Errorf("retrieved = %d, metrics say %d", got.Retrieved, want)
			}
			if got.Unclosed != 0 {
				t.Errorf("unclosed episodes = %d, want 0", got.Unclosed)
			}
			hist := metrics.Histograms["client.recovery_delay_us"]
			if got.RecoveryDelay.Count != hist.Count {
				t.Errorf("recovery delay count = %d, histogram says %d", got.RecoveryDelay.Count, hist.Count)
			}
			if hist.Count > 0 {
				if got.RecoveryDelay.MinUS != hist.Min || got.RecoveryDelay.MaxUS != hist.Max {
					t.Errorf("recovery delay min/max = %d/%d, histogram says %d/%d",
						got.RecoveryDelay.MinUS, got.RecoveryDelay.MaxUS, hist.Min, hist.Max)
				}
			}
		})
	}
}

// TestFleetSubcommand pins the fleet lint's exit-code and smoke-grep
// contract: scripts/sweep-smoke.sh greps the "expire->re-lease episodes"
// line and the JSON report's expire_release_episodes field after killing a
// worker, so both handles must stay stable.
func TestFleetSubcommand(t *testing.T) {
	fleet := filepath.Join("testdata", "fleet.trace.jsonl")
	fleetDirty := filepath.Join("testdata", "fleet-dirty.trace.jsonl")

	code, out, _ := exec(t, "fleet", fleet)
	if code != 0 {
		t.Fatalf("fleet on clean trace exited %d", code)
	}
	if !strings.Contains(out, "fleet lint: clean") {
		t.Errorf("clean trace output missing lint verdict:\n%s", out)
	}
	if !strings.Contains(out, "expire->re-lease episodes: 1") {
		t.Errorf("output missing the smoke-grep episode line:\n%s", out)
	}

	code, out, _ = exec(t, "fleet", "-json", fleet)
	if code != 0 {
		t.Fatalf("fleet -json exited %d", code)
	}
	var rep struct {
		Episodes   int64 `json:"expire_release_episodes"`
		Violations int64 `json:"total_violations"`
		Grants     int64 `json:"grants"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("parse fleet JSON: %v", err)
	}
	if rep.Episodes != 1 || rep.Violations != 0 || rep.Grants != 2 {
		t.Errorf("fleet JSON episodes/violations/grants = %d/%d/%d, want 1/0/2",
			rep.Episodes, rep.Violations, rep.Grants)
	}

	if code, _, _ := exec(t, "fleet", fleetDirty); code != 1 {
		t.Errorf("fleet on dirty trace exited %d, want 1", code)
	}
	if code, _, _ := exec(t, "fleet", filepath.Join("testdata", "no-such.jsonl")); code != 1 {
		t.Errorf("fleet on missing file exited %d, want 1", code)
	}
	if code, _, _ := exec(t, "fleet"); code != 2 {
		t.Errorf("fleet with no files exited %d, want 2", code)
	}
	if code, _, stderr := exec(t, "fleet", "-export", "svg", fleet); code != 2 ||
		!strings.Contains(stderr, "unknown fleet export format") {
		t.Errorf("bad export format: code %d, stderr %q", code, stderr)
	}
	if code, _, _ := exec(t, "fleet", "-export", "chrome", fleet, fleet); code != 2 {
		t.Errorf("export with two files exited %d, want usage error", code)
	}

	// -o writes the same bytes the stdout golden pins.
	outPath := filepath.Join(t.TempDir(), "fleet.json")
	if code, stdout, stderr := exec(t, "fleet", "-export", "chrome", "-o", outPath, fleet); code != 0 || stdout != "" {
		t.Fatalf("fleet -export -o: code %d, stdout %q, stderr %q", code, stdout, stderr)
	}
	written, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "fleet-chrome.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(written, golden) {
		t.Error("fleet -export -o output differs from stdout golden")
	}

	// Stdin input works for the report path.
	data, err := os.ReadFile(fleet)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if code := run([]string{"fleet", "-"}, bytes.NewReader(data), &buf, &buf); code != 0 ||
		!strings.Contains(buf.String(), "fleet lint: clean") {
		t.Fatalf("fleet over stdin: code %d, out %q", code, buf.String())
	}
}

// TestSLOSubcommand pins the slo analyzer CLI's exit-code contract and the
// handles scripts/slo-smoke.sh greps: the per-rule episode accounting and
// the "slo lint: clean" verdict line.
func TestSLOSubcommand(t *testing.T) {
	sloTrace := filepath.Join("testdata", "slo.trace.jsonl")
	sloDirty := filepath.Join("testdata", "slo-dirty.trace.jsonl")

	code, out, _ := exec(t, "slo", sloTrace)
	if code != 0 {
		t.Fatalf("slo on clean trace exited %d", code)
	}
	if !strings.Contains(out, "slo lint: clean") {
		t.Errorf("clean trace output missing lint verdict:\n%s", out)
	}
	if !strings.Contains(out, "mos-floor") || !strings.Contains(out, "resolved") {
		t.Errorf("output missing the episode table:\n%s", out)
	}

	code, out, _ = exec(t, "slo", "-json", sloTrace)
	if code != 0 {
		t.Fatalf("slo -json exited %d", code)
	}
	var rep struct {
		SLOEvents  int64 `json:"slo_events"`
		Violations int64 `json:"total_violations"`
		Rules      map[string]struct {
			Episodes int64 `json:"episodes"`
			Fired    int64 `json:"fired"`
			Open     int64 `json:"open"`
		} `json:"rules"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("parse slo JSON: %v", err)
	}
	if rep.SLOEvents != 4 || rep.Violations != 0 {
		t.Errorf("slo JSON events/violations = %d/%d, want 4/0", rep.SLOEvents, rep.Violations)
	}
	if r := rep.Rules["mos-floor"]; r.Episodes != 1 || r.Fired != 1 {
		t.Errorf("mos-floor = %+v", r)
	}
	if r := rep.Rules["miss-rate"]; r.Open != 1 {
		t.Errorf("miss-rate = %+v", r)
	}

	if code, _, _ := exec(t, "slo", sloDirty); code != 1 {
		t.Errorf("slo on dirty trace exited %d, want 1", code)
	}
	if code, _, _ := exec(t, "slo", filepath.Join("testdata", "no-such.jsonl")); code != 1 {
		t.Errorf("slo on missing file exited %d, want 1", code)
	}
	if code, _, _ := exec(t, "slo"); code != 2 {
		t.Errorf("slo with no files exited %d, want 2", code)
	}
	if code, _, stderr := exec(t, "slo", "-export", "svg", sloTrace); code != 2 ||
		!strings.Contains(stderr, "unknown slo export format") {
		t.Errorf("bad export format: code %d, stderr %q", code, stderr)
	}
	if code, _, _ := exec(t, "slo", "-export", "chrome", sloTrace, sloTrace); code != 2 {
		t.Errorf("export with two files exited %d, want usage error", code)
	}

	outPath := filepath.Join(t.TempDir(), "slo.json")
	if code, stdout, stderr := exec(t, "slo", "-export", "chrome", "-o", outPath, sloTrace); code != 0 || stdout != "" {
		t.Fatalf("slo -export -o: code %d, stdout %q, stderr %q", code, stdout, stderr)
	}
	written, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "slo-chrome.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(written, golden) {
		t.Error("slo -export -o output differs from stdout golden")
	}

	data, err := os.ReadFile(sloTrace)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if code := run([]string{"slo", "-"}, bytes.NewReader(data), &buf, &buf); code != 0 ||
		!strings.Contains(buf.String(), "slo lint: clean") {
		t.Fatalf("slo over stdin: code %d, out %q", code, buf.String())
	}
}
