// Command tracetool analyzes JSONL traces produced by the -trace flag of
// cmd/experiments and cmd/campaign (schema: docs/OBSERVABILITY.md), via the
// streaming engine in internal/obs/analyze.
//
// Usage:
//
//	tracetool lint [-max N] FILE...
//	tracetool episodes [-json] FILE...
//	tracetool series [-json] [-window DUR] FILE...
//	tracetool summary [-json] FILE...
//	tracetool export [-format chrome] [-o FILE] FILE
//	tracetool fleet [-json] [-max N] [-export chrome] [-o FILE] FILE...
//	tracetool slo [-json] [-max N] [-export chrome] [-o FILE] FILE...
//
// lint checks every line against the trace contract — strict schema decode,
// per-(run, node) timestamp ordering, episode well-formedness, and
// retrieval causality — printing one "file:line: kind: message" finding per
// violation and exiting nonzero if any trace is dirty.
//
// episodes reconstructs every secondary visit (recovery and keepalive) with
// its Table 3 delay decomposition: detect (trigger loss → switch), switch
// (link-switch cost), retrieve (switch completion → first retrieval), and
// total (switch initiation → first retrieval, the client.recovery_delay_us
// observation).
//
// series buckets event counts into fixed windows of simulated time — the
// trace-derived counterpart of the -series flag's metric timeline.
//
// summary prints per-trace totals: events by type, per-link transmit
// outcomes and loss-burst structure, episode counts, and lint status.
//
// export converts a trace into another tool's format. The only format so
// far is chrome: Chrome trace-event JSON loadable in chrome://tracing or
// https://ui.perfetto.dev, with one track per (run, node) and each
// recovery episode rendered as a span plus its detect/switch/retrieve
// phase slices.
//
// fleet analyzes the fleet-trace-v1 lease lifecycle a sharded sweep emits
// (spec-fetch, lease-grant, heartbeat, expire, re-lease, complete,
// reject-stale): per-worker timelines, per-lease episodes, expire→re-lease
// recovery accounting, and a causality lint over the coordinator's lease
// state machine (a complete after expire — a merged stale report — is a
// violation). Each FILE is analyzed independently, because traces from
// different processes have different wall-clock epochs. -export chrome
// renders per-worker lanes with lease spans for chrome://tracing /
// Perfetto; violations exit nonzero so CI can gate on clean fleet traces.
//
// slo analyzes the slo-trace-v1 alert transitions the streaming SLO engine
// (-slo RULES.yaml, internal/obs/slo) emits under its "slo/<hash8>" run
// label: per-rule episode accounting, every pending→firing→resolved
// episode's timeline, and a lint over the alert state machine (sequences
// strictly increase, one open episode per rule, firing and resolved only
// against the open episode). -export chrome renders one lane per rule with
// episode spans and firing arcs.
//
// FILE may be "-" for stdin. All subcommands accept -json for
// machine-readable output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/obs/analyze"
	"repro/internal/stats"
)

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  tracetool lint [-max N] FILE...
  tracetool episodes [-json] FILE...
  tracetool series [-json] [-window DUR] FILE...
  tracetool summary [-json] FILE...
  tracetool export [-format chrome] [-o FILE] FILE
  tracetool fleet [-json] [-max N] [-export chrome] [-o FILE] FILE...
  tracetool slo [-json] [-max N] [-export chrome] [-o FILE] FILE...

FILE may be "-" for stdin. See docs/OBSERVABILITY.md for the trace schema.
`)
}

// run is the testable entry point: it dispatches to one subcommand and
// returns the process exit code (0 ok, 1 failure/violations, 2 usage).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "lint":
		return cmdLint(rest, stdin, stdout, stderr)
	case "episodes":
		return cmdEpisodes(rest, stdin, stdout, stderr)
	case "series":
		return cmdSeries(rest, stdin, stdout, stderr)
	case "summary":
		return cmdSummary(rest, stdin, stdout, stderr)
	case "export":
		return cmdExport(rest, stdin, stdout, stderr)
	case "fleet":
		return cmdFleet(rest, stdin, stdout, stderr)
	case "slo":
		return cmdSLO(rest, stdin, stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "tracetool: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
}

// analyzeFile runs one analysis pass over path ("-" = stdin).
func analyzeFile(path string, stdin io.Reader, opts analyze.Options) (*analyze.Report, error) {
	r := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return analyze.Analyze(r, opts)
}

// forEachFile analyzes every path, invoking fn per report. Open/read errors
// are printed and turn the exit code nonzero without stopping the walk.
func forEachFile(paths []string, stdin io.Reader, stderr io.Writer,
	opts analyze.Options, fn func(path string, rep *analyze.Report)) int {
	code := 0
	for _, path := range paths {
		rep, err := analyzeFile(path, stdin, opts)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			code = 1
			continue
		}
		fn(path, rep)
	}
	return code
}

func cmdLint(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxV := fs.Int("max", 0, "max violations to print per file (0 = default 100, negative = all)")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	dirty := false
	code := forEachFile(fs.Args(), stdin, stderr, analyze.Options{MaxViolations: *maxV},
		func(path string, rep *analyze.Report) {
			for _, v := range rep.Violations {
				fmt.Fprintf(stdout, "%s:%d: %s: %s\n", path, v.Line, v.Kind, v.Msg)
			}
			if rep.Clean() {
				fmt.Fprintf(stdout, "%s: %d events, clean\n", path, rep.Events)
			} else {
				dirty = true
				fmt.Fprintf(stdout, "%s: %d events, %d violations (%d shown)\n",
					path, rep.Events, rep.TotalViolations, len(rep.Violations))
			}
		})
	// Violations are findings, not tool errors, but the exit code must
	// reflect them so CI can gate on a clean corpus.
	if code == 0 && dirty {
		code = 1
	}
	return code
}

func cmdEpisodes(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("episodes", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit JSON instead of a text table")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	return forEachFile(fs.Args(), stdin, stderr, analyze.Options{KeepEpisodes: true},
		func(path string, rep *analyze.Report) {
			if *asJSON {
				writeJSON(stdout, struct {
					File          string             `json:"file"`
					Recoveries    int64              `json:"recoveries"`
					Keepalives    int64              `json:"keepalives"`
					Unclosed      int64              `json:"unclosed"`
					Retrieved     int64              `json:"retrieved"`
					RecoveryDelay analyze.DelayStats `json:"recovery_delay"`
					DetectDelay   analyze.DelayStats `json:"detect_delay"`
					Episodes      []analyze.Episode  `json:"episodes"`
				}{path, rep.Recoveries, rep.Keepalives, rep.Unclosed, rep.Retrieved,
					rep.RecoveryDelay, rep.DetectDelay, rep.Episodes})
				return
			}
			tbl := stats.NewTable("episodes: "+path,
				"run", "kind", "line", "start_us", "end_us", "trigger",
				"detect_us", "switch_us", "retrieve_us", "total_us", "retrieved")
			for _, e := range rep.Episodes {
				tbl.AddRow(e.Run, e.Kind, fmt.Sprint(e.Line), fmt.Sprint(e.StartUS),
					orDash(e.EndUS), orDash(int64(e.TriggerSeq)), orDash(e.DetectUS),
					fmt.Sprint(e.SwitchUS), orDash(e.RetrieveUS), orDash(e.TotalUS),
					fmt.Sprint(e.Retrieved))
			}
			fmt.Fprint(stdout, tbl.String())
			fmt.Fprintf(stdout, "recoveries %d, keepalives %d, unclosed %d, retrieved %d\n",
				rep.Recoveries, rep.Keepalives, rep.Unclosed, rep.Retrieved)
			fmt.Fprintf(stdout, "recovery total_us: %s\n", delayLine(rep.RecoveryDelay))
			fmt.Fprintf(stdout, "detect_us:         %s\n", delayLine(rep.DetectDelay))
		})
}

func cmdSeries(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("series", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit JSON instead of a text table")
	window := fs.Duration("window", time.Second, "window width in simulated time")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() < 1 || *window <= 0 {
		usage(stderr)
		return 2
	}
	windowUS := window.Microseconds()
	return forEachFile(fs.Args(), stdin, stderr, analyze.Options{WindowUS: windowUS},
		func(path string, rep *analyze.Report) {
			if *asJSON {
				writeJSON(stdout, struct {
					File     string               `json:"file"`
					WindowUS int64                `json:"window_us"`
					Points   []analyze.TracePoint `json:"points"`
				}{path, windowUS, rep.Points})
				return
			}
			// Columns: the union of count keys across every window.
			keySet := map[string]bool{}
			for _, p := range rep.Points {
				for k := range p.Counts {
					keySet[k] = true
				}
			}
			keys := make([]string, 0, len(keySet))
			for k := range keySet {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			tbl := stats.NewTable(fmt.Sprintf("series: %s (window %v)", path, *window),
				append([]string{"start_us", "end_us"}, keys...)...)
			for _, p := range rep.Points {
				row := []string{fmt.Sprint(p.StartUS), fmt.Sprint(p.EndUS)}
				for _, k := range keys {
					if n := p.Counts[k]; n != 0 {
						row = append(row, fmt.Sprint(n))
					} else {
						row = append(row, "")
					}
				}
				tbl.AddRow(row...)
			}
			fmt.Fprint(stdout, tbl.String())
		})
}

func cmdSummary(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the full report as JSON")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	return forEachFile(fs.Args(), stdin, stderr, analyze.Options{},
		func(path string, rep *analyze.Report) {
			if *asJSON {
				writeJSON(stdout, struct {
					File string `json:"file"`
					*analyze.Report
				}{path, rep})
				return
			}
			fmt.Fprintf(stdout, "%s: %d lines, %d events", path, rep.Lines, rep.Events)
			if len(rep.Runs) > 0 {
				fmt.Fprintf(stdout, ", runs %v, span [%dus, %dus]", rep.Runs, rep.FirstUS, rep.LastUS)
			}
			fmt.Fprintln(stdout)

			types := stats.NewTable("", "event", "count")
			for _, k := range sortedKeys(rep.ByType) {
				types.AddRow(k, fmt.Sprint(rep.ByType[k]))
			}
			fmt.Fprint(stdout, types.String())

			links := stats.NewTable("links",
				"link", "delivered", "wasted", "lost", "retries", "drops",
				"hd-evict", "hd-refuse", "bursts", "max-burst")
			for _, k := range sortedKeys(rep.Links) {
				ls := rep.Links[k]
				links.AddRow(k, fmt.Sprint(ls.TxDelivered), fmt.Sprint(ls.TxWasted),
					fmt.Sprint(ls.TxLost), fmt.Sprint(ls.Retries), fmt.Sprint(ls.Drops),
					fmt.Sprint(ls.HeadDropEvict), fmt.Sprint(ls.HeadDropRefuse),
					fmt.Sprint(ls.LossBursts), fmt.Sprint(ls.MaxBurst))
			}
			fmt.Fprint(stdout, links.String())

			fmt.Fprintf(stdout, "episodes: %d recoveries, %d keepalives, %d unclosed; %d retrieved, %d playout misses\n",
				rep.Recoveries, rep.Keepalives, rep.Unclosed, rep.Retrieved, rep.PlayoutMisses)
			fmt.Fprintf(stdout, "recovery total_us: %s\n", delayLine(rep.RecoveryDelay))
			if rep.Clean() {
				fmt.Fprintln(stdout, "lint: clean")
			} else {
				fmt.Fprintf(stdout, "lint: %d violations (run `tracetool lint %s`)\n",
					rep.TotalViolations, path)
			}
		})
}

func cmdExport(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "chrome", "output format (chrome)")
	outPath := fs.String("o", "", "write to this file instead of stdout")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() != 1 {
		usage(stderr)
		return 2
	}
	if *format != "chrome" {
		fmt.Fprintf(stderr, "tracetool: unknown export format %q (supported: chrome)\n", *format)
		return 2
	}
	in := stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	out := stdout
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
		outFile = f
		out = f
	}
	if err := analyze.ChromeTrace(in, out); err != nil {
		fmt.Fprintln(stderr, "tracetool:", err)
		if outFile != nil {
			outFile.Close()
		}
		return 1
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
	}
	return 0
}

func cmdFleet(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the full fleet report as JSON")
	maxV := fs.Int("max", 0, "max violations to print per file (0 = default 100, negative = all)")
	export := fs.String("export", "", "export format instead of a report (chrome)")
	outPath := fs.String("o", "", "write the export to this file instead of stdout")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	if *export != "" {
		if *export != "chrome" {
			fmt.Fprintf(stderr, "tracetool: unknown fleet export format %q (supported: chrome)\n", *export)
			return 2
		}
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "tracetool: fleet -export takes exactly one FILE")
			return 2
		}
		return fleetExport(fs.Arg(0), *outPath, stdin, stdout, stderr)
	}
	// Each file is analyzed independently: traces from different processes
	// (coordinator, each worker) have different wall-clock epochs, so their
	// timestamps must never be compared.
	code := 0
	dirty := false
	for _, path := range fs.Args() {
		in := stdin
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(stderr, "tracetool:", err)
				code = 1
				continue
			}
			rep, rerr := analyze.AnalyzeFleet(f, *maxV)
			f.Close()
			if rerr != nil {
				fmt.Fprintln(stderr, "tracetool:", rerr)
				code = 1
				continue
			}
			if !printFleet(stdout, path, rep, *asJSON) {
				dirty = true
			}
			continue
		}
		rep, rerr := analyze.AnalyzeFleet(in, *maxV)
		if rerr != nil {
			fmt.Fprintln(stderr, "tracetool:", rerr)
			code = 1
			continue
		}
		if !printFleet(stdout, path, rep, *asJSON) {
			dirty = true
		}
	}
	if code == 0 && dirty {
		code = 1
	}
	return code
}

// printFleet renders one file's fleet report, returning rep.Clean().
func printFleet(stdout io.Writer, path string, rep *analyze.FleetReport, asJSON bool) bool {
	if asJSON {
		writeJSON(stdout, struct {
			File string `json:"file"`
			*analyze.FleetReport
		}{path, rep})
		return rep.Clean()
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(stdout, "%s:%d: %s: %s\n", path, v.Line, v.Kind, v.Msg)
	}
	fmt.Fprintf(stdout, "%s: %d events (%d fleet, %d skipped)", path, rep.Events, rep.FleetEvents, rep.Skipped)
	if len(rep.Runs) > 0 {
		fmt.Fprintf(stdout, ", runs %v", rep.Runs)
	}
	fmt.Fprintln(stdout)

	lanes := stats.NewTable("worker lanes", "node", "events", "first_us", "last_us")
	for _, node := range sortedKeys(rep.Lanes) {
		l := rep.Lanes[node]
		lanes.AddRow(node, fmt.Sprint(l.Events), fmt.Sprint(l.FirstUS), fmt.Sprint(l.LastUS))
	}
	fmt.Fprint(stdout, lanes.String())

	leases := stats.NewTable("leases",
		"lease", "worker", "span", "grant_us", "end_us", "ttl_us", "hb", "outcome", "re-leased")
	for _, e := range rep.Leases {
		outcome := e.Outcome
		if e.Reason != "" {
			outcome += " (" + e.Reason + ")"
		}
		if e.ReLease {
			outcome += " [re-lease]"
		}
		releasedTag := ""
		if e.ReLeased {
			releasedTag = "yes"
		}
		leases.AddRow(e.ID, e.Worker, fmt.Sprintf("%d:%d", e.From, e.To),
			fmt.Sprint(e.GrantUS), orDash(e.EndUS), fmt.Sprint(e.TTLUS),
			fmt.Sprint(e.Heartbeats), outcome, releasedTag)
	}
	fmt.Fprint(stdout, leases.String())

	fmt.Fprintf(stdout, "grants %d (%d re-lease), completed %d, expired %d, stale rejects %d, heartbeats %d\n",
		rep.Grants, rep.ReLeases, rep.Completed, rep.Expired, rep.StaleRejects, rep.Heartbeats)
	fmt.Fprintf(stdout, "expire->re-lease episodes: %d\n", rep.ExpireReLeaseEpisodes)
	if rep.Clean() {
		fmt.Fprintln(stdout, "fleet lint: clean")
	} else {
		fmt.Fprintf(stdout, "fleet lint: %d violations (%d shown)\n",
			rep.TotalViolations, len(rep.Violations))
	}
	return rep.Clean()
}

// fleetExport renders one fleet trace as Chrome trace-event JSON.
func fleetExport(path, outPath string, stdin io.Reader, stdout, stderr io.Writer) int {
	in := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	out := stdout
	var outFile *os.File
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
		outFile = f
		out = f
	}
	if err := analyze.FleetChromeTrace(in, out); err != nil {
		fmt.Fprintln(stderr, "tracetool:", err)
		if outFile != nil {
			outFile.Close()
		}
		return 1
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
	}
	return 0
}

func cmdSLO(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the full SLO report as JSON")
	maxV := fs.Int("max", 0, "max violations to print per file (0 = default 100, negative = all)")
	export := fs.String("export", "", "export format instead of a report (chrome)")
	outPath := fs.String("o", "", "write the export to this file instead of stdout")
	if fs.Parse(args) != nil {
		return 2
	}
	if fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	if *export != "" {
		if *export != "chrome" {
			fmt.Fprintf(stderr, "tracetool: unknown slo export format %q (supported: chrome)\n", *export)
			return 2
		}
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "tracetool: slo -export takes exactly one FILE")
			return 2
		}
		return sloExport(fs.Arg(0), *outPath, stdin, stdout, stderr)
	}
	code := 0
	dirty := false
	for _, path := range fs.Args() {
		in := stdin
		var f *os.File
		if path != "-" {
			var err error
			if f, err = os.Open(path); err != nil {
				fmt.Fprintln(stderr, "tracetool:", err)
				code = 1
				continue
			}
			in = f
		}
		rep, rerr := analyze.AnalyzeSLO(in, *maxV)
		if f != nil {
			f.Close()
		}
		if rerr != nil {
			fmt.Fprintln(stderr, "tracetool:", rerr)
			code = 1
			continue
		}
		if !printSLO(stdout, path, rep, *asJSON) {
			dirty = true
		}
	}
	if code == 0 && dirty {
		code = 1
	}
	return code
}

// printSLO renders one file's SLO report, returning rep.Clean().
func printSLO(stdout io.Writer, path string, rep *analyze.SLOReport, asJSON bool) bool {
	if asJSON {
		writeJSON(stdout, struct {
			File string `json:"file"`
			*analyze.SLOReport
		}{path, rep})
		return rep.Clean()
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(stdout, "%s:%d: %s: %s\n", path, v.Line, v.Kind, v.Msg)
	}
	fmt.Fprintf(stdout, "%s: %d events (%d slo, %d skipped)", path, rep.Events, rep.SLOEvents, rep.Skipped)
	if len(rep.Runs) > 0 {
		fmt.Fprintf(stdout, ", runs %v", rep.Runs)
	}
	fmt.Fprintln(stdout)

	rules := stats.NewTable("rules", "rule", "episodes", "fired", "resolved", "open", "firing_us")
	for _, name := range sortedKeys(rep.Rules) {
		st := rep.Rules[name]
		rules.AddRow(name, fmt.Sprint(st.Episodes), fmt.Sprint(st.Fired),
			fmt.Sprint(st.Resolved), fmt.Sprint(st.Open), fmt.Sprint(st.FiringUS))
	}
	fmt.Fprint(stdout, rules.String())

	eps := stats.NewTable("episodes",
		"rule", "seq", "pending_us", "firing_us", "resolved_us", "outcome", "value", "bound")
	for _, e := range rep.Episodes {
		eps.AddRow(e.Rule, fmt.Sprint(e.Seq), fmt.Sprint(e.PendingUS),
			orDash(e.FiringUS), orDash(e.ResolvedUS), e.Outcome, e.Value, e.Bound)
	}
	fmt.Fprint(stdout, eps.String())

	if rep.Clean() {
		fmt.Fprintln(stdout, "slo lint: clean")
	} else {
		fmt.Fprintf(stdout, "slo lint: %d violations (%d shown)\n",
			rep.TotalViolations, len(rep.Violations))
	}
	return rep.Clean()
}

// sloExport renders one trace's slo-* events as Chrome trace-event JSON.
func sloExport(path, outPath string, stdin io.Reader, stdout, stderr io.Writer) int {
	in := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	out := stdout
	var outFile *os.File
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
		outFile = f
		out = f
	}
	if err := analyze.SLOChromeTrace(in, out); err != nil {
		fmt.Fprintln(stderr, "tracetool:", err)
		if outFile != nil {
			outFile.Close()
		}
		return 1
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(stderr, "tracetool:", err)
			return 1
		}
	}
	return 0
}

// orDash renders v, with the analyzer's -1 "not determined" sentinel as "-".
func orDash(v int64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprint(v)
}

// delayLine renders a DelayStats as "count N min X mean Y max Z".
func delayLine(d analyze.DelayStats) string {
	if d.Count == 0 {
		return "count 0"
	}
	return fmt.Sprintf("count %d min %d mean %.1f max %d", d.Count, d.MinUS, d.MeanUS(), d.MaxUS)
}

func writeJSON(w io.Writer, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(w, "{}")
		return
	}
	w.Write(data)
	io.WriteString(w, "\n")
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
