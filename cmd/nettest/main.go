// Command nettest runs the §3.2 distributed measurement study standalone:
// a simulated deployment of WiFi clients and well-connected nodes running
// VoIP-like calls, directly and through relays, reporting Table 2 and the
// user-level distribution.
//
// Usage:
//
//	nettest [-seed N] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"repro/internal/sim/rng"

	"repro/internal/nettest"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed")
	scale := flag.Float64("scale", 1.0, "scale the paper's call counts")
	flag.Parse()

	cfg := nettest.DefaultConfig()
	if *scale != 1.0 {
		scaled := map[nettest.CallType]int{}
		for ct, n := range cfg.Counts {
			scaled[ct] = int(float64(n) * *scale)
			if scaled[ct] < 1 {
				scaled[ct] = 1
			}
		}
		cfg.Counts = scaled
	}
	st := nettest.Run(rng.New(*seed), cfg)
	byType, counts, overall := st.PCRByType()
	fmt.Printf("%-12s %8s %8s\n", "call type", "calls", "PCR %")
	total := 0
	for _, ct := range []nettest.CallType{nettest.EW, nettest.WW, nettest.EWRelayed, nettest.WWRelayed} {
		fmt.Printf("%-12s %8d %8.2f\n", ct, counts[ct], 100*byType[ct])
		total += counts[ct]
	}
	fmt.Printf("%-12s %8d %8.2f\n\n", "total", total, 100*overall)
	anyPoor, over20 := st.UserStats()
	fmt.Printf("users with >=1 poor call: %.1f%%\n", 100*anyPoor)
	fmt.Printf("users with PCR >= 20%%:    %.1f%%\n", 100*over20)
}
