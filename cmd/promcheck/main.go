// Command promcheck validates Prometheus text exposition without external
// tooling: a promtool-style `check metrics` that depends only on this
// repository, so CI can assert the live /metrics endpoint
// (internal/obs/expose) really speaks the format scrapers expect.
//
// The source is a file path, "-" for stdin, or an http(s) URL. URLs are
// fetched with retries, which lets scripts point promcheck at a server
// that is still starting up. With -expect-body the response must instead
// equal the given string exactly after trimming trailing whitespace — the
// health-check mode scripts/http-smoke.sh uses against /healthz.
//
// Usage:
//
//	promcheck /tmp/metrics.txt
//	promcheck http://127.0.0.1:9090/metrics
//	promcheck -retry 20 -interval 100ms -expect-body ok http://127.0.0.1:9090/healthz
//
// Exit status: 0 when the source validates, 1 when it cannot be read or
// fails validation, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs/expose"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("promcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	retry := fs.Int("retry", 1, "attempts before giving up (URLs and -expect-body sources)")
	interval := fs.Duration("interval", 500*time.Millisecond, "delay between attempts")
	expectBody := fs.String("expect-body", "", "require this exact body (trailing whitespace ignored) instead of validating exposition")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: promcheck [-retry N] [-interval D] [-expect-body S] FILE|URL|-\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	if *retry < 1 {
		fmt.Fprintf(stderr, "promcheck: -retry must be >= 1, got %d\n", *retry)
		return 2
	}
	source := fs.Arg(0)

	var lastErr error
	for attempt := 1; attempt <= *retry; attempt++ {
		if attempt > 1 {
			time.Sleep(*interval)
		}
		data, err := fetch(source, stdin)
		if err == nil {
			err = check(data, *expectBody)
		}
		if err == nil {
			report(stdout, source, data, *expectBody)
			return 0
		}
		lastErr = err
		if source == "-" {
			break // stdin cannot be re-read
		}
	}
	fmt.Fprintf(stderr, "promcheck: %s: %v\n", source, lastErr)
	return 1
}

// fetch reads the source: stdin, an HTTP URL, or a file.
func fetch(source string, stdin io.Reader) ([]byte, error) {
	switch {
	case source == "-":
		return io.ReadAll(stdin)
	case strings.HasPrefix(source, "http://"), strings.HasPrefix(source, "https://"):
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get(source)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %s", resp.Status)
		}
		return data, nil
	default:
		return os.ReadFile(source)
	}
}

// check validates the payload: exact-body mode when expect is set,
// exposition validation otherwise.
func check(data []byte, expect string) error {
	if expect != "" {
		if got := strings.TrimRight(string(data), " \t\r\n"); got != expect {
			return fmt.Errorf("body %q, want %q", got, expect)
		}
		return nil
	}
	_, err := expose.ValidateExposition(data)
	return err
}

// report prints the one-line success summary.
func report(w io.Writer, source string, data []byte, expect string) {
	if expect != "" {
		fmt.Fprintf(w, "promcheck: %s: body matches %q\n", source, expect)
		return
	}
	st, _ := expose.ValidateExposition(data)
	fmt.Fprintf(w, "promcheck: %s: valid exposition, %d families, %d samples\n",
		source, st.Families, st.Samples)
}
