package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

const validExposition = `# HELP sim_events_executed DiversiFi counter sim.events_executed
# TYPE sim_events_executed counter
sim_events_executed 5000
# HELP ap_queue_depth DiversiFi gauge ap.queue_depth
# TYPE ap_queue_depth gauge
ap_queue_depth 3
ap_queue_depth_max 9
`

func exec(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCheckFileAndStdin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.txt")
	if err := os.WriteFile(path, []byte(validExposition), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := exec(t, "", path)
	// The gauge's _max companion sample is its own (untyped) family.
	if code != 0 || !strings.Contains(out, "3 families, 3 samples") {
		t.Errorf("file: code %d, stdout %q, stderr %q", code, out, errOut)
	}
	code, out, _ = exec(t, validExposition, "-")
	if code != 0 || !strings.Contains(out, "valid exposition") {
		t.Errorf("stdin: code %d, stdout %q", code, out)
	}
}

func TestCheckRejectsInvalid(t *testing.T) {
	code, _, errOut := exec(t, "1bad name{ 5\n", "-")
	if code != 1 || !strings.Contains(errOut, "promcheck: -:") {
		t.Errorf("invalid stdin: code %d, stderr %q", code, errOut)
	}
	if code, _, _ := exec(t, "", filepath.Join(t.TempDir(), "nope.txt")); code != 1 {
		t.Errorf("missing file: code %d, want 1", code)
	}
}

func TestCheckURL(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/metrics":
			w.Write([]byte(validExposition))
		case "/healthz":
			w.Write([]byte("ok\n"))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	if code, out, errOut := exec(t, "", srv.URL+"/metrics"); code != 0 ||
		!strings.Contains(out, "valid exposition") {
		t.Errorf("url: code %d, stdout %q, stderr %q", code, out, errOut)
	}
	if code, out, _ := exec(t, "", "-expect-body", "ok", srv.URL+"/healthz"); code != 0 ||
		!strings.Contains(out, `body matches "ok"`) {
		t.Errorf("healthz: code %d, stdout %q", code, out)
	}
	if code, _, errOut := exec(t, "", "-expect-body", "ok", srv.URL+"/metrics"); code != 1 ||
		!strings.Contains(errOut, "want") {
		t.Errorf("body mismatch: code %d, stderr %q", code, errOut)
	}
	if code, _, errOut := exec(t, "", srv.URL+"/missing"); code != 1 ||
		!strings.Contains(errOut, "404") {
		t.Errorf("404: code %d, stderr %q", code, errOut)
	}
}

// TestRetryUntilUp simulates a server that starts answering only on the
// third request — the scripts/http-smoke.sh startup race.
func TestRetryUntilUp(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	code, _, errOut := exec(t, "", "-retry", "10", "-interval", "1ms", "-expect-body", "ok", srv.URL)
	if code != 0 {
		t.Errorf("retry: code %d, stderr %q", code, errOut)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server hit %d times, want 3", got)
	}

	hits.Store(-1000)
	if code, _, _ := exec(t, "", "-retry", "2", "-interval", "1ms", "-expect-body", "ok", srv.URL); code != 1 {
		t.Errorf("exhausted retries: code %d, want 1", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := exec(t, ""); code != 2 {
		t.Errorf("no args: code %d, want 2", code)
	}
	if code, _, _ := exec(t, "", "a", "b"); code != 2 {
		t.Errorf("two sources: code %d, want 2", code)
	}
	if code, _, _ := exec(t, "", "-retry", "0", "-"); code != 2 {
		t.Errorf("retry 0: code %d, want 2", code)
	}
}
