// Command linkemu runs a live lossy-link emulator: a UDP forwarder that
// drops and delays datagrams per a configurable bursty loss process,
// standing in for a WiFi hop when exercising the live DiversiFi path.
//
// Usage:
//
//	linkemu -to 127.0.0.1:6000 [-listen 127.0.0.1:5000]
//	        [-loss 0.05] [-burst-enter 0.002] [-burst-exit 0.05] [-burst-loss 0.6]
//	        [-delay 2ms] [-jitter 1ms] [-seed 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/emu"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "ingress address")
	to := flag.String("to", "", "downstream address (required)")
	loss := flag.Float64("loss", 0.02, "good-state per-packet loss probability")
	burstEnter := flag.Float64("burst-enter", 0.002, "probability of entering a bad episode per packet")
	burstExit := flag.Float64("burst-exit", 0.05, "probability of leaving a bad episode per packet")
	burstLoss := flag.Float64("burst-loss", 0.6, "per-packet loss probability while bad")
	delay := flag.Duration("delay", 2*time.Millisecond, "base forwarding delay")
	jitter := flag.Duration("jitter", time.Millisecond, "mean exponential jitter")
	seed := flag.Int64("seed", 0, "loss-process seed (0 = time-based)")
	flag.Parse()

	if *to == "" {
		fmt.Fprintln(os.Stderr, "linkemu: -to is required")
		os.Exit(2)
	}
	link, err := emu.NewLink(*listen, *to, emu.LinkConfig{
		Loss: *loss, BurstEnter: *burstEnter, BurstExit: *burstExit, BurstLoss: *burstLoss,
		Delay: *delay, Jitter: *jitter, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkemu:", err)
		os.Exit(1)
	}
	defer link.Close()
	fmt.Printf("link up: %s → %s (loss %.1f%%, burst %.0f%%)\n", link.Addr(), *to, 100**loss, 100**burstLoss)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			st := link.Stats()
			fmt.Printf("final: received %d, forwarded %d, dropped %d\n", st.Received, st.Forwarded, st.Dropped)
			return
		case <-tick.C:
			st := link.Stats()
			fmt.Printf("stats: received %d, forwarded %d, dropped %d\n", st.Received, st.Forwarded, st.Dropped)
		}
	}
}
