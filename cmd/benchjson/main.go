// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_<date>.json format the repository checks in to
// track simulator performance over time (see docs/PERFORMANCE.md), and
// compares two such documents for regressions.
//
// Each input to the converter is one benchmark run, given as label=file;
// "-" as the file reads stdin. All standard testing metrics are kept
// (ns/op, B/op, allocs/op) along with any custom b.ReportMetric units (the
// scheduler benchmarks report events/sec); ops/sec is derived from ns/op
// for benchmarks that do not report a throughput of their own.
//
// `benchjson diff OLD NEW` compares two documents benchmark-by-benchmark
// on one metric (default ns/op) and exits nonzero when any benchmark
// regresses by more than the threshold. Benchmarks are matched by package
// and name across all run sets; when a name appears in several run sets of
// one file (the before/after documents the optimization PRs check in), the
// last occurrence wins, so a before/after document compares as its tuned
// numbers.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/sim > run.txt
//	go run ./cmd/benchjson -date 2026-08-06 -o BENCH_2026-08-06.json current=run.txt
//	go run ./cmd/benchjson diff BENCH_2026-08-06.json BENCH_2026-09-01.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Pkg     string             `json:"pkg,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// RunSet is every benchmark parsed from one labelled input.
type RunSet struct {
	Label      string      `json:"label"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the BENCH_<date>.json document.
type File struct {
	Date string   `json:"date"`
	Runs []RunSet `json:"runs"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "diff" {
		return runDiff(args[1:], stdout, stderr)
	}
	return runConvert(args, stdin, stdout, stderr)
}

// runConvert is the original mode: parse labelled bench outputs into one
// JSON document.
func runConvert(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	date := fs.String("date", "", "date stamp for the output document (required)")
	out := fs.String("o", "", "output path (default stdout)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchjson -date YYYY-MM-DD [-o out.json] label=file [label=file...]\n")
		fmt.Fprintf(stderr, "       benchjson diff [-metric M] [-threshold F] OLD NEW\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *date == "" || fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	doc := File{Date: *date}
	for _, arg := range fs.Args() {
		label, path, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(stderr, "benchjson: argument %q is not label=file\n", arg)
			return 2
		}
		var r io.Reader
		if path == "-" {
			r = stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(stderr, "benchjson: %v\n", err)
				return 1
			}
			defer f.Close()
			r = f
		}
		rs, err := parseRun(label, r)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: parse %s: %v\n", path, err)
			return 1
		}
		if len(rs.Benchmarks) == 0 {
			fmt.Fprintf(stderr, "benchjson: %s contains no benchmark lines\n", path)
			return 1
		}
		doc.Runs = append(doc.Runs, rs)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// parseRun reads one `go test -bench` output stream.
func parseRun(label string, r io.Reader) (RunSet, error) {
	rs := RunSet{Label: label}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rs.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rs.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rs.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return rs, err
			}
			b.Pkg = pkg
			rs.Benchmarks = append(rs.Benchmarks, b)
		}
	}
	return rs, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   12345   86.06 ns/op   11620362 events/sec   56 B/op   2 allocs/op
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix when it is purely numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	name = strings.TrimPrefix(name, "Benchmark")
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: name, Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value in %q: %v", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
		if _, has := b.Metrics["events/sec"]; !has {
			b.Metrics["ops/sec"] = 1e9 / ns
		}
	}
	return b, nil
}
