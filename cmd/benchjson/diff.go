package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// benchKey identifies one benchmark across documents. Run-set labels are
// deliberately not part of the key: labels name the circumstances of a run
// (sim/e2e, before/after), and the same benchmark should compare across
// differently-labelled runs of different dates.
type benchKey struct {
	Pkg  string
	Name string
}

func (k benchKey) String() string {
	if k.Pkg == "" {
		return k.Name
	}
	// Print only the last path element; every benchmark in one repo shares
	// the module prefix.
	pkg := k.Pkg
	if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[i+1:]
	}
	return pkg + "/" + k.Name
}

// runDiff implements `benchjson diff [-metric M] [-threshold F] OLD NEW`:
// load two BENCH_<date>.json documents, compare the chosen metric for every
// benchmark present in both, and exit 1 when any regresses past the
// threshold. Exit 2 is reserved for usage and input errors so scripts can
// tell "the numbers got worse" from "the comparison never ran".
func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	metric := fs.String("metric", "ns/op", "metric to compare")
	threshold := fs.Float64("threshold", 0.10, "regression tolerance as a fraction (0.10 = 10%)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchjson diff [-metric M] [-threshold F] OLD NEW\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *threshold < 0 {
		fmt.Fprintf(stderr, "benchjson diff: threshold must be >= 0, got %v\n", *threshold)
		return 2
	}

	oldDoc, err := loadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchjson diff: %v\n", err)
		return 2
	}
	newDoc, err := loadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchjson diff: %v\n", err)
		return 2
	}

	report, regressions := diffDocs(oldDoc, newDoc, *metric, *threshold)
	io.WriteString(stdout, report)
	if regressions > 0 {
		return 1
	}
	return 0
}

func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	if len(doc.Runs) == 0 {
		return nil, fmt.Errorf("%s contains no benchmark runs", path)
	}
	return &doc, nil
}

// flattenMetric collapses a document to one value per benchmark. Later run
// sets override earlier ones, so the before/after documents that store the
// tuned run last resolve to their tuned numbers.
func flattenMetric(doc *File, metric string) map[benchKey]float64 {
	out := map[benchKey]float64{}
	for _, rs := range doc.Runs {
		for _, b := range rs.Benchmarks {
			if v, ok := b.Metrics[metric]; ok {
				out[benchKey{Pkg: b.Pkg, Name: b.Name}] = v
			}
		}
	}
	return out
}

// higherIsBetter reports the improvement direction for a metric: throughput
// units (events/sec, ops/sec) improve upward, everything else (ns/op, B/op,
// allocs/op) improves downward.
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "/sec") || strings.HasSuffix(metric, "/s")
}

// diffDocs renders the comparison table and counts regressions beyond the
// threshold fraction.
func diffDocs(oldDoc, newDoc *File, metric string, threshold float64) (string, int) {
	oldVals := flattenMetric(oldDoc, metric)
	newVals := flattenMetric(newDoc, metric)
	higher := higherIsBetter(metric)

	keys := make([]benchKey, 0, len(oldVals))
	for k := range oldVals {
		if _, ok := newVals[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pkg != keys[j].Pkg {
			return keys[i].Pkg < keys[j].Pkg
		}
		return keys[i].Name < keys[j].Name
	})

	var b strings.Builder
	direction := "lower is better"
	if higher {
		direction = "higher is better"
	}
	fmt.Fprintf(&b, "benchjson diff: %s (%s), threshold %.0f%% (%s -> %s)\n\n",
		metric, direction, threshold*100, oldDoc.Date, newDoc.Date)

	regressions := 0
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "  benchmark\told\tnew\tdelta\t\n")
	for _, k := range keys {
		ov, nv := oldVals[k], newVals[k]
		delta, sign := deltaPct(ov, nv)
		bad := nv > ov
		if higher {
			bad = nv < ov
		}
		mark := ""
		if bad && regressed(ov, nv, threshold) {
			mark = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\n", k, formatValue(ov), formatValue(nv), sign+delta, mark)
	}
	tw.Flush()

	for _, line := range missing(newVals, oldVals, "added") {
		b.WriteString(line)
	}
	for _, line := range missing(oldVals, newVals, "removed") {
		b.WriteString(line)
	}

	fmt.Fprintf(&b, "\n%d compared, %d regressed beyond %.0f%%\n", len(keys), regressions, threshold*100)
	return b.String(), regressions
}

// regressed reports whether the relative change from ov to nv exceeds the
// tolerance, regardless of direction (the caller has already established
// the change points the wrong way).
func regressed(ov, nv, threshold float64) bool {
	if ov == 0 {
		return nv != 0
	}
	return math.Abs(nv-ov)/math.Abs(ov) > threshold
}

// deltaPct renders the relative change as a signed percentage. The sign
// prefix is split out so callers can align on it.
func deltaPct(ov, nv float64) (pct, sign string) {
	if ov == 0 {
		if nv == 0 {
			return "0.0%", ""
		}
		return "inf%", "+"
	}
	d := (nv - ov) / math.Abs(ov) * 100
	sign = "+"
	if d < 0 {
		sign = "-"
		d = -d
	}
	return fmt.Sprintf("%.1f%%", d), sign
}

// formatValue prints a metric value compactly: integers without decimals,
// everything else with enough precision to see small moves.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// missing lists benchmarks present in a but not in b, one line each.
func missing(a, b map[benchKey]float64, what string) []string {
	var keys []benchKey
	for k := range a {
		if _, ok := b[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pkg != keys[j].Pkg {
			return keys[i].Pkg < keys[j].Pkg
		}
		return keys[i].Name < keys[j].Name
	})
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("  %s: %s\n", what, k))
	}
	return out
}
