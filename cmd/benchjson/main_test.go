package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec runs the CLI entry point and captures its streams.
func exec(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

const sampleBenchText = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleChain-8   	14817850	        86.06 ns/op	  11620362 events/sec	      56 B/op	       2 allocs/op
BenchmarkScheduleCancel-8  	 6039205	       207.2 ns/op	      56 B/op	       2 allocs/op
PASS
ok  	repro/internal/sim	4.2s
`

func TestConvertStdin(t *testing.T) {
	code, out, errOut := exec(t, sampleBenchText, "-date", "2026-08-06", "current=-")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var doc File
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc.Date != "2026-08-06" || len(doc.Runs) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	rs := doc.Runs[0]
	if rs.Label != "current" || rs.Goos != "linux" || len(rs.Benchmarks) != 2 {
		t.Fatalf("run set = %+v", rs)
	}
	chain := rs.Benchmarks[0]
	if chain.Name != "ScheduleChain" || chain.Pkg != "repro/internal/sim" ||
		chain.Metrics["ns/op"] != 86.06 || chain.Metrics["events/sec"] != 11620362 {
		t.Errorf("ScheduleChain = %+v", chain)
	}
	// ops/sec is derived only when no native throughput was reported.
	if _, has := chain.Metrics["ops/sec"]; has {
		t.Error("ScheduleChain has derived ops/sec despite reporting events/sec")
	}
	if rs.Benchmarks[1].Metrics["ops/sec"] == 0 {
		t.Error("ScheduleCancel missing derived ops/sec")
	}
}

func TestConvertUsageErrors(t *testing.T) {
	if code, _, _ := exec(t, "", "current=-"); code != 2 {
		t.Errorf("missing -date: exit %d, want 2", code)
	}
	if code, _, _ := exec(t, "", "-date", "2026-08-06"); code != 2 {
		t.Errorf("no inputs: exit %d, want 2", code)
	}
	if code, _, stderr := exec(t, "", "-date", "2026-08-06", "noequals"); code != 2 ||
		!strings.Contains(stderr, "label=file") {
		t.Errorf("bad arg: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := exec(t, "", "-date", "2026-08-06", "x=/no/such/file"); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code, _, stderr := exec(t, "PASS\n", "-date", "2026-08-06", "x=-"); code != 1 ||
		!strings.Contains(stderr, "no benchmark lines") {
		t.Errorf("empty input: exit %d, stderr %q", code, stderr)
	}
}

// writeDoc marshals a File into a temp path for diff tests.
func writeDoc(t *testing.T, doc File) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Pkg: "repro/internal/sim", Runs: 100, Metrics: metrics}
}

func TestDiffCleanAndRegression(t *testing.T) {
	oldPath := writeDoc(t, File{Date: "2026-08-01", Runs: []RunSet{{
		Label: "sim",
		Benchmarks: []Benchmark{
			bench("Stable", map[string]float64{"ns/op": 100}),
			bench("Slower", map[string]float64{"ns/op": 100}),
			bench("Gone", map[string]float64{"ns/op": 50}),
		},
	}}})
	newPath := writeDoc(t, File{Date: "2026-08-06", Runs: []RunSet{{
		Label: "sim",
		Benchmarks: []Benchmark{
			bench("Stable", map[string]float64{"ns/op": 104}),
			bench("Slower", map[string]float64{"ns/op": 130}),
			bench("Fresh", map[string]float64{"ns/op": 10}),
		},
	}}})

	code, out, _ := exec(t, "", "diff", oldPath, newPath)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (regression present)\n%s", code, out)
	}
	for _, want := range []string{
		"ns/op (lower is better)",
		"2026-08-01 -> 2026-08-06",
		"sim/Slower", "+30.0%", "REGRESSION",
		"sim/Stable", "+4.0%",
		"added: sim/Fresh",
		"removed: sim/Gone",
		"2 compared, 1 regressed beyond 10%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The within-threshold drift must not be flagged.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Stable") && strings.Contains(line, "REGRESSION") {
			t.Errorf("Stable flagged as regression: %s", line)
		}
	}

	// A looser threshold accepts the same pair.
	if code, out, _ := exec(t, "", "diff", "-threshold", "0.5", oldPath, newPath); code != 0 {
		t.Errorf("threshold 0.5: exit %d, want 0\n%s", code, out)
	}
}

func TestDiffHigherIsBetterMetric(t *testing.T) {
	oldPath := writeDoc(t, File{Date: "a", Runs: []RunSet{{
		Label:      "sim",
		Benchmarks: []Benchmark{bench("Chain", map[string]float64{"events/sec": 1000})},
	}}})
	faster := writeDoc(t, File{Date: "b", Runs: []RunSet{{
		Label:      "sim",
		Benchmarks: []Benchmark{bench("Chain", map[string]float64{"events/sec": 2000})},
	}}})
	slower := writeDoc(t, File{Date: "c", Runs: []RunSet{{
		Label:      "sim",
		Benchmarks: []Benchmark{bench("Chain", map[string]float64{"events/sec": 500})},
	}}})

	if code, out, _ := exec(t, "", "diff", "-metric", "events/sec", oldPath, faster); code != 0 ||
		!strings.Contains(out, "higher is better") {
		t.Errorf("throughput doubling flagged: exit %d\n%s", code, out)
	}
	if code, out, _ := exec(t, "", "diff", "-metric", "events/sec", oldPath, slower); code != 1 {
		t.Errorf("throughput halving not flagged: exit %d\n%s", code, out)
	}
}

// TestDiffLaterRunSetWins pins the before/after semantics: when one file
// holds the same benchmark in several run sets, the last occurrence is the
// one compared.
func TestDiffLaterRunSetWins(t *testing.T) {
	oldPath := writeDoc(t, File{Date: "a", Runs: []RunSet{
		{Label: "sim-before", Benchmarks: []Benchmark{bench("Chain", map[string]float64{"ns/op": 500})}},
		{Label: "sim-after", Benchmarks: []Benchmark{bench("Chain", map[string]float64{"ns/op": 100})}},
	}})
	newPath := writeDoc(t, File{Date: "b", Runs: []RunSet{
		{Label: "sim", Benchmarks: []Benchmark{bench("Chain", map[string]float64{"ns/op": 105})}},
	}})
	code, out, _ := exec(t, "", "diff", oldPath, newPath)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (105 vs tuned 100 is within 10%%)\n%s", code, out)
	}
	if !strings.Contains(out, "+5.0%") {
		t.Errorf("delta should be against the tuned (last) run set:\n%s", out)
	}
}

func TestDiffAgainstCheckedInBaseline(t *testing.T) {
	baseline := filepath.Join("..", "..", "BENCH_2026-08-06.json")
	code, out, errOut := exec(t, "", "diff", baseline, baseline)
	if code != 0 {
		t.Fatalf("self-diff of the checked-in baseline: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "0 regressed") || strings.Contains(out, "added:") {
		t.Errorf("self-diff should be clean:\n%s", out)
	}
}

func TestDiffUsageAndIOErrors(t *testing.T) {
	good := writeDoc(t, File{Date: "a", Runs: []RunSet{{
		Label: "sim", Benchmarks: []Benchmark{bench("X", map[string]float64{"ns/op": 1})},
	}}})
	if code, _, _ := exec(t, "", "diff", good); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code, _, _ := exec(t, "", "diff", good, good, good); code != 2 {
		t.Errorf("three args: exit %d, want 2", code)
	}
	if code, _, stderr := exec(t, "", "diff", "/no/such.json", good); code != 2 || stderr == "" {
		t.Errorf("missing old: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := exec(t, "", "diff", "-threshold", "-1", good, good); code != 2 {
		t.Errorf("negative threshold: exit %d, want 2", code)
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"date":"a","runs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := exec(t, "", "diff", empty, good); code != 2 ||
		!strings.Contains(stderr, "no benchmark runs") {
		t.Errorf("empty doc: exit %d, stderr %q", code, stderr)
	}
}
