// Command middlebox runs the live DiversiFi middlebox daemon: it buffers
// replicated real-time stream packets per stream (head-drop) and serves
// the textual start/stop control protocol over UDP (§5.3.2).
//
// Usage:
//
//	middlebox [-data 127.0.0.1:7000] [-ctrl 127.0.0.1:7001] [-depth 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/emu"
)

func main() {
	data := flag.String("data", "127.0.0.1:7000", "data socket (replicated stream copies)")
	ctrl := flag.String("ctrl", "127.0.0.1:7001", "control socket (REGISTER/START/STOP/STATS)")
	depth := flag.Int("depth", 5, "per-stream head-drop buffer depth")
	flag.Parse()

	mb, err := emu.NewMiddlebox(*data, *ctrl, emu.MiddleboxConfig{BufferDepth: *depth})
	if err != nil {
		fmt.Fprintln(os.Stderr, "middlebox:", err)
		os.Exit(1)
	}
	defer mb.Close()
	fmt.Printf("middlebox up: data %s, control %s, depth %d\n", mb.DataAddr(), mb.CtrlAddr(), *depth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("middlebox shutting down")
}
