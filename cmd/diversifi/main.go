// Command diversifi simulates one interactive-streaming call over two WiFi
// links and reports network and call-quality metrics for a chosen
// receiving strategy.
//
// Usage:
//
//	diversifi [-seed N] [-impairment none|weak-link|mobility|microwave|congestion]
//	          [-strategy stronger|better|divert|temporal|cross-link|diversifi|diversifi-mb]
//	          [-profile g711|highrate] [-duration 2m]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"repro/internal/sim/rng"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/voip"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	imp := flag.String("impairment", "none", "impairment class")
	strategy := flag.String("strategy", "diversifi", "receiving strategy")
	profName := flag.String("profile", "g711", "stream profile: g711 or highrate")
	duration := flag.Duration("duration", 2*time.Minute, "call duration")
	fullAssoc := flag.Bool("assoc", false, "run the 802.11 management plane (scan + associate + queue-config IE) before the call")
	scenarioIn := flag.String("scenario", "", "load the scenario from a JSON file instead of generating one")
	scenarioOut := flag.String("scenario-out", "", "write the generated scenario to a JSON file for later replay")
	flag.Parse()

	impairments := map[string]core.Impairment{
		"none": core.ImpNone, "weak-link": core.ImpWeakLink, "mobility": core.ImpMobility,
		"microwave": core.ImpMicrowave, "congestion": core.ImpCongestion,
	}
	impairment, ok := impairments[*imp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown impairment %q\n", *imp)
		os.Exit(2)
	}
	profile := traffic.G711
	if *profName == "highrate" {
		profile = traffic.HighRate
	}

	var sc core.Scenario
	if *scenarioIn != "" {
		data, err := os.ReadFile(*scenarioIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diversifi:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &sc); err != nil {
			fmt.Fprintln(os.Stderr, "diversifi: bad scenario file:", err)
			os.Exit(1)
		}
	} else {
		rng := rng.New(*seed)
		sc = core.RandomScenario(rng, impairment, profile, *seed).
			WithDuration(sim.FromSeconds(duration.Seconds()))
	}
	if *scenarioOut != "" {
		data, err := json.MarshalIndent(sc, "", "  ")
		if err == nil {
			err = os.WriteFile(*scenarioOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "diversifi:", err)
			os.Exit(1)
		}
	}

	var tr *trace.Trace
	var extra string
	switch *strategy {
	case "stronger":
		tr = core.RunDualCall(sc).Stronger()
	case "better":
		tr = core.RunDualCall(sc).Better(5 * sim.Second)
	case "divert":
		tr = core.RunDualCall(sc).Divert(1, 1)
	case "cross-link":
		tr = core.RunDualCall(sc).CrossLink()
	case "temporal":
		tr, _ = core.RunTemporal(sc, 100*sim.Millisecond)
	case "diversifi", "diversifi-mb":
		mode := core.ModeCustomAP
		if *strategy == "diversifi-mb" {
			mode = core.ModeMiddlebox
		}
		r := core.RunDiversiFi(sc, core.DiversiFiOptions{Mode: mode, FullAssociation: *fullAssoc})
		tr = r.Trace
		if *fullAssoc {
			extra = fmt.Sprintf("association setup:    %.1f ms\n", r.AssociationDelay.Milliseconds())
		}
		extra += fmt.Sprintf(
			"losses detected:      %d\nrecovered:            %d\nrecovery switches:    %d\nkeepalive switches:   %d\nwasteful duplication: %.2f%%\n",
			r.Client.LossesDetected, r.Client.Recovered,
			r.Client.RecoverySwitches, r.Client.KeepaliveSwitches,
			100*r.WastefulRate)
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	q := voip.Assess(tr, profile)
	lost := tr.LostWithDeadline(profile.Deadline)
	fmt.Printf("scenario:    %s, seed %d, %s stream, %v call\n", impairment, *seed, profile.Name, *duration)
	fmt.Printf("strategy:    %s\n\n", *strategy)
	fmt.Printf("packets:              %d\n", tr.Len())
	fmt.Printf("loss rate:            %.2f%%\n", 100*stats.LossRate(lost))
	fmt.Printf("worst 5s loss:        %.1f%%\n", 100*q.WorstWindowLoss)
	fmt.Printf("mean one-way delay:   %.2f ms\n", q.MeanDelayMs)
	fmt.Printf("jitter (RFC3550):     %.2f ms\n", q.JitterMs)
	fmt.Printf("concealment:          %d interpolated, %d extrapolated\n", q.Interpolated, q.Extrapolated)
	fmt.Printf("MOS estimate:         %.2f (R=%.1f)%s\n", q.MOS, q.RFactor, poorTag(q.Poor))
	if extra != "" {
		fmt.Print("\n", extra)
	}
}

func poorTag(poor bool) string {
	if poor {
		return "  ← POOR CALL"
	}
	return ""
}
