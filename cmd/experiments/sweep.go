package main

import (
	"fmt"
	"io"

	"repro/internal/campaign"
	"repro/internal/obs/slo"
	"repro/internal/sweep"
)

// runSweepMode is `experiments sweep SPEC.json`: regenerate the paper
// artifact (Tables 1-3, MOS quantiles, CDF figures) from a fleet sweep
// spec, in process. It is the single-machine twin of `campaign sweep
// -report` — same engine, same cache, same deterministic fingerprint — for
// when the grid fits one box and no control plane is wanted. See
// docs/RESULTS.md for the checked-in artifact this regenerates. A -slo
// rule set with cell bindings stamps per-cell verdicts on the summary,
// exactly like the sharded path.
func runSweepMode(path string, cache *campaign.Cache, rules *slo.RuleSet, stdout, stderr io.Writer) error {
	spec, err := sweep.LoadSpec(path)
	if err != nil {
		return err
	}
	if err := sweep.ValidateSLOBindings(rules); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "sweep %q: %s (spec %s)\n",
		spec.Name, spec.Grid(), spec.Hash())
	coord := sweep.NewCoordinator(spec, sweep.CoordinatorOptions{SLO: rules})
	if _, err := sweep.RunWorker(sweep.LocalTransport{C: coord},
		&sweep.Runner{Cache: cache},
		sweep.WorkerOptions{Name: "experiments", Progress: stderr}); err != nil {
		return err
	}
	sum := coord.Summary()
	rep, err := sum.Report()
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.Text())
	if sum.Failed > 0 {
		return fmt.Errorf("sweep %q: %d jobs failed", spec.Name, sum.Failed)
	}
	return nil
}
