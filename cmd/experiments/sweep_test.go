package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// TestRunSweepMode drives `experiments sweep` end to end on the real
// simulator and checks the paper artifact comes out whole.
func TestRunSweepMode(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "spec.json")
	doc := `{"name":"tiny","seeds":{"start":7,"count":2},"duration_s":5,
		"impairments":["weak-link"],"device_classes":["pc"],"ap_densities":["typical"]}`
	if err := os.WriteFile(spec, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	cache, err := campaign.OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := runSweepMode(spec, cache, nil, &out, &errOut); err != nil {
		t.Fatalf("%v, stderr %q", err, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"Paper artifact", "Table 1", "Table 2", "Table 3",
		"MOS CDF", "fingerprint"} {
		if !strings.Contains(text, want) {
			t.Errorf("artifact missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(errOut.String(), "1 cells × 2 seeds = 2 jobs") {
		t.Errorf("progress header: %q", errOut.String())
	}
}

func TestRunSweepModeBadSpec(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := runSweepMode(filepath.Join(t.TempDir(), "nope.json"), nil, nil, &out, &errOut); err == nil {
		t.Error("missing spec accepted")
	}
}
