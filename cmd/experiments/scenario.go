package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/voip"
)

// runScenarioMode dispatches the `experiments scenario` subcommands:
//
//	scenario validate SPEC...        check specs, print hash and count
//	scenario gen SPEC [-n N] [-out DIR]   generate the corpus as JSONL
//	scenario run SPEC [-i N] [-strategy S]   run one generated scenario end to end
//
// These are the CLI face of internal/scenario: the same decode → normalize
// → generate pipeline the sweep engine's scenarios axis uses, so a spec
// that validates here is a spec a fleet can run.
func runScenarioMode(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return usageError{}
	}
	switch args[0] {
	case "validate":
		if len(args) < 2 {
			return usageError{}
		}
		return scenarioValidate(args[1:], stdout)
	case "gen":
		return scenarioGen(args[1:], stdout)
	case "run":
		return scenarioRun(args[1:], stdout)
	default:
		return usageError{}
	}
}

// usageError tells main to print usage and exit 2 rather than 1.
type usageError struct{}

func (usageError) Error() string {
	return "usage: experiments scenario validate SPEC...\n" +
		"       experiments scenario gen SPEC [-n N] [-out DIR]\n" +
		"       experiments scenario run SPEC [-i N] [-strategy all|dual|diversifi]"
}

func scenarioValidate(paths []string, stdout io.Writer) error {
	for _, path := range paths {
		spec, err := scenario.LoadSpec(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(stdout, "ok %s name=%s hash=%s count=%d duration=%gs profile=%s\n",
			path, spec.Name, spec.Hash(), spec.Count, spec.DurationS, spec.Profile)
	}
	return nil
}

// genRecord is one generated scenario's JSONL line: the generator metadata
// plus the complete exported scenario description, enough to reconstruct
// the exact simulated call with core.FromParams.
type genRecord struct {
	Index      int                 `json:"index"`
	Seed       int64               `json:"seed"`
	Impairment string              `json:"impairment"`
	Device     string              `json:"device"`
	MIMOOrder  int                 `json:"mimo_order"`
	Severity   float64             `json:"severity"`
	StartUS    int64               `json:"start_us"`
	Params     core.ScenarioParams `json:"params"`
}

func scenarioGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("scenario gen", flag.ContinueOnError)
	n := fs.Int("n", 0, "generate only the first N scenarios (0 = all)")
	outDir := fs.String("out", "", "write one <name>-<index>.json per scenario instead of JSONL on stdout")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(sortedFlagsFirst(args)); err != nil || fs.NArg() != 1 {
		return usageError{}
	}
	spec, err := scenario.LoadSpec(fs.Arg(0))
	if err != nil {
		return err
	}
	count := spec.Count
	if *n > 0 && *n < count {
		count = *n
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	starts := spec.Arrivals(count)
	enc := json.NewEncoder(stdout)
	for i := 0; i < count; i++ {
		g := spec.Generate(i)
		rec := genRecord{
			Index:      g.Index,
			Seed:       g.Seed,
			Impairment: g.Impairment.String(),
			Device:     g.Device,
			MIMOOrder:  g.MIMOOrder,
			Severity:   g.Severity,
			StartUS:    int64(starts[i]),
			Params:     g.Scenario.Params(),
		}
		if *outDir == "" {
			if err := enc.Encode(rec); err != nil {
				return err
			}
			continue
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, fmt.Sprintf("%s-%03d.json", spec.Name, i))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *outDir != "" {
		fmt.Fprintf(stdout, "wrote %d scenarios to %s (spec %s)\n", count, *outDir, spec.Hash())
	}
	return nil
}

func scenarioRun(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	idx := fs.Int("i", 0, "corpus index to run")
	strategy := fs.String("strategy", "all", "which strategies to run: all, dual, diversifi")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(sortedFlagsFirst(args)); err != nil || fs.NArg() != 1 {
		return usageError{}
	}
	switch *strategy {
	case "all", "dual", "diversifi":
	default:
		return fmt.Errorf("scenario run: -strategy %q not in all/dual/diversifi", *strategy)
	}
	spec, err := scenario.LoadSpec(fs.Arg(0))
	if err != nil {
		return err
	}
	if *idx < 0 || *idx >= spec.Count {
		return fmt.Errorf("scenario index %d outside the spec's corpus [0, %d)", *idx, spec.Count)
	}
	g := spec.Generate(*idx)
	profile := spec.TrafficProfile()
	fmt.Fprintf(stdout, "scenario %s[%d]: impairment=%s device=%s severity=%.2f seed=%d\n",
		spec.Name, g.Index, g.Impairment, g.Device, g.Severity, g.Seed)

	report := func(strategy string, q voip.Quality) {
		fmt.Fprintf(stdout, "  %-10s MOS=%.2f loss=%.2f%% worst-window=%.2f%% poor=%v\n",
			strategy, q.MOS, 100*q.LossRate, 100*q.WorstWindowLoss, q.Poor)
	}
	// Restricting to one strategy also keeps the process on a single
	// simulation — useful under -slo/-series, whose window collector follows
	// the global clock high-water mark and so only sees the first simulation
	// of a multi-sim process in full (docs/OBSERVABILITY.md).
	if *strategy == "all" || *strategy == "dual" {
		d := core.RunDualCall(g.Scenario)
		report("stronger", voip.Assess(d.Stronger(), profile))
		report("cross", voip.Assess(d.CrossLink(), profile))
	}
	if *strategy == "all" || *strategy == "diversifi" {
		r := core.RunDiversiFi(g.Scenario, core.DiversiFiOptions{Mode: core.ModeCustomAP})
		report("diversifi", voip.Assess(r.Trace, profile))
	}
	return nil
}

// sortedFlagsFirst reorders args so flags precede the positional spec path,
// allowing both `gen spec.yaml -n 5` and `gen -n 5 spec.yaml`.
func sortedFlagsFirst(args []string) []string {
	var flags, pos []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if len(a) > 1 && a[0] == '-' {
			flags = append(flags, a)
			// A flag of the form -name value consumes the next arg.
			if !hasEquals(a) && i+1 < len(args) {
				flags = append(flags, args[i+1])
				i++
			}
			continue
		}
		pos = append(pos, a)
	}
	return append(flags, pos...)
}

func hasEquals(a string) bool {
	for _, c := range a {
		if c == '=' {
			return true
		}
	}
	return false
}
