// Command experiments regenerates every table and figure of the DiversiFi
// paper's evaluation from the simulation substrates.
//
// Usage:
//
//	experiments [-seed N] [-n N] [-csv] <experiment>|all
//
// Experiments: table1 table2 table3 fig1 fig2a fig2b fig2c fig2d fig2e
// fig3 fig4 fig5 fig6 fig8 fig9 fig10 overhead mbscale
// ablation-queue-policy ablation-queue-size ablation-switch-timing
// ablation-keepalive ablation-plt calibrate calibrate-imp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/exp"
)

func main() {
	seed := flag.Int64("seed", 42, "root random seed")
	n := flag.Int("n", 0, "corpus size override (0 = paper's size)")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	outDir := flag.String("out", "", "also write each experiment's CSV to <dir>/<id>.csv")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-seed N] [-n N] [-csv] <experiment>|all")
		os.Exit(2)
	}

	pick := func(def int) int {
		if *n > 0 {
			return *n
		}
		return def
	}
	runners := map[string]func() *exp.Result{
		"table1": func() *exp.Result { return exp.Table1(*seed) },
		"table2": func() *exp.Result { return exp.Table2(*seed) },
		"table3": func() *exp.Result { return exp.Table3(*seed) },
		"fig1":   func() *exp.Result { return exp.Figure1(*seed) },
		"fig2a":  func() *exp.Result { return exp.Figure2a(pick(458), *seed) },
		"fig2b":  func() *exp.Result { return exp.Figure2b(pick(458), *seed) },
		"fig2c":  func() *exp.Result { return exp.Figure2c(pick(458), *seed) },
		"fig2d":  func() *exp.Result { return exp.Figure2d(pick(44), *seed) },
		"fig2e":  func() *exp.Result { return exp.Figure2e(pick(80), *seed) },
		"fig3":   func() *exp.Result { return exp.Figure3(*seed) },
		"fig7":   func() *exp.Result { return exp.Figure7() },
		"fig4":   func() *exp.Result { return exp.Figure4(pick(458), *seed) },
		"fig5":   func() *exp.Result { return exp.Figure5(pick(458), *seed) },
		"fig6":   func() *exp.Result { return exp.Figure6(pick(60), *seed) },
		"fig8":   func() *exp.Result { return exp.Figure8(pick(61), *seed) },
		"fig9":   func() *exp.Result { return exp.Figure9(pick(61), *seed) },
		"fig10":  func() *exp.Result { return exp.Figure10(pick(26), *seed) },

		"overhead": func() *exp.Result { return exp.Overhead(pick(61), *seed) },
		"mbscale":  func() *exp.Result { return exp.MiddleboxScaling(*seed) },

		"ablation-queue-policy":  func() *exp.Result { return exp.AblationQueuePolicy(pick(40), *seed) },
		"ablation-queue-size":    func() *exp.Result { return exp.AblationQueueSize(pick(40), *seed) },
		"ablation-switch-timing": func() *exp.Result { return exp.AblationSwitchTiming(pick(40), *seed) },
		"ablation-keepalive":     func() *exp.Result { return exp.AblationKeepalive(pick(40), *seed) },
		"ablation-plt":           func() *exp.Result { return exp.AblationPLT(pick(40), *seed) },

		"ablation-playout": func() *exp.Result { return exp.AblationPlayout(pick(40), *seed) },
		"ablation-hwbatch": func() *exp.Result { return exp.AblationHWBatch(pick(40), *seed) },
		"ablation-backoff": func() *exp.Result { return exp.AblationBackoff(pick(40), *seed) },

		// Extensions beyond the paper.
		"validate": func() *exp.Result { return exp.Validate(pick(200), *seed) },
		"uplink":   func() *exp.Result { return exp.Uplink(pick(40), *seed) },
		"fec":      func() *exp.Result { return exp.FECComparison(pick(60), *seed) },
		"links":    func() *exp.Result { return exp.DiversityVsLinks(pick(60), *seed) },
		"edca":     func() *exp.Result { return exp.EDCA(pick(50), *seed) },
		"handoff":  func() *exp.Result { return exp.Handoff(pick(60), *seed) },
	}
	order := []string{
		"table1", "table2", "fig1",
		"fig2a", "fig2b", "fig2c", "fig2d", "fig2e",
		"fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "overhead", "table3", "mbscale",
		"ablation-queue-policy", "ablation-queue-size", "ablation-switch-timing",
		"ablation-keepalive", "ablation-plt", "ablation-playout", "ablation-hwbatch", "ablation-backoff",
		"uplink", "fec", "links", "edca", "handoff", "validate",
	}

	emit := func(r *exp.Result) {
		if *csv {
			fmt.Print(r.CSV())
		} else {
			fmt.Print(r.Render())
		}
		fmt.Println()
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}

	switch name := flag.Arg(0); name {
	case "all":
		for _, id := range order {
			emit(runners[id]())
		}
	case "calibrate":
		fmt.Print(exp.Calibrate(pick(120), *seed))
	case "calibrate-imp":
		fmt.Print(exp.CalibrateImpairments(pick(40), *seed))
	default:
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		emit(run())
	}
}
