// Command experiments regenerates every table and figure of the DiversiFi
// paper's evaluation from the simulation substrates.
//
// Usage:
//
//	experiments [-seed N] [-n N] [-csv] [-metrics FILE] [-trace FILE]
//	            [-series PATH[,WINDOW]] [-pprof DIR] [-http ADDR]
//	            <experiment>|all
//	experiments sweep SPEC.json
//	experiments scenario validate SPEC...
//	experiments scenario gen SPEC [-n N] [-out DIR]
//	experiments scenario run SPEC [-i N] [-strategy all|dual|diversifi]
//
// The experiment set comes from exp.Registry(), the same table the
// campaign scheduler (cmd/campaign) runs fleets from; `experiments all`
// regenerates everything except the calibration sweeps, which are
// diagnostic. Run `experiments list` for the full inventory.
//
// `experiments sweep` runs a fleet sweep spec in process and prints the
// paper artifact — Tables 1-3 and the CDF figures of docs/RESULTS.md —
// rendered from merged metric sketches. It shares the result cache and the
// deterministic fingerprint with `campaign sweep` (see docs/FLEET.md).
//
// `experiments scenario` validates, generates, and runs declarative
// scenario-v1 specs (internal/scenario, docs/SCENARIOS.md): `validate`
// checks documents and prints their canonical hashes, `gen` materializes a
// spec's generated corpus as JSONL (or per-scenario JSON files with -out),
// and `run` executes one generated scenario under all three strategies.
//
// The observability flags (-metrics, -trace, -series, -pprof, -http) are
// shared with cmd/campaign; see docs/OBSERVABILITY.md for the metric names,
// the JSONL trace schema, the time-series dump, and the live HTTP
// endpoints they produce. Traces can be analyzed offline with
// cmd/tracetool.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/campaign"
	"repro/internal/exp"
	"repro/internal/obsflag"
)

func main() { os.Exit(run()) }

func run() int {
	seed := flag.Int64("seed", 42, "root random seed")
	n := flag.Int("n", 0, "corpus size override (0 = paper's size)")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	outDir := flag.String("out", "", "also write each experiment's CSV to <dir>/<id>.csv")
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-seed N] [-n N] [-csv] [-metrics FILE] [-trace FILE] [-series PATH[,WINDOW]] [-pprof DIR] <experiment>|all|list")
		fmt.Fprintln(os.Stderr, "       experiments sweep SPEC.json")
		fmt.Fprintln(os.Stderr, "       experiments scenario validate|gen|run SPEC...")
		return 2
	}

	sess, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	defer sess.Close()
	sess.HandleSignals("experiments")

	code := 0
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		code = 1
	}
	emit := func(r *exp.Result) {
		if *csv {
			fmt.Print(r.CSV())
		} else {
			fmt.Print(r.Render())
		}
		fmt.Println()
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fail(err)
				return
			}
			path := filepath.Join(*outDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				fail(err)
			}
		}
	}
	runSpec := func(s exp.Spec) {
		r := s.Run(*n, *seed)
		if s.Kind == exp.KindCalibration {
			// Calibration sweeps are free-form diagnostic text, not tables.
			fmt.Print(strings.Join(r.Plots, ""))
			return
		}
		emit(r)
	}

	switch name := flag.Arg(0); name {
	case "all":
		for _, s := range exp.Registry() {
			if s.Kind == exp.KindCalibration {
				continue
			}
			runSpec(s)
		}
	case "list":
		for _, s := range exp.Registry() {
			fmt.Printf("%-24s %-12s %s\n", s.ID, s.Kind, s.Title)
		}
	case "scenario":
		if err := runScenarioMode(flag.Args()[1:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			if _, isUsage := err.(usageError); isUsage {
				return 2
			}
			return 1
		}
	case "sweep":
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: experiments sweep SPEC.json")
			return 2
		}
		cache, cerr := campaign.OpenCache(campaign.DefaultCacheDir)
		if cerr != nil {
			fail(cerr)
			break
		}
		if err := runSweepMode(flag.Arg(1), cache, sess.SLO().RuleSet(), os.Stdout, os.Stderr); err != nil {
			fail(err)
		}
	default:
		s, err := exp.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		runSpec(s)
	}
	if err := sess.Close(); err != nil {
		fail(err)
	}
	return code
}
