// Command experiments regenerates every table and figure of the DiversiFi
// paper's evaluation from the simulation substrates.
//
// Usage:
//
//	experiments [-seed N] [-n N] [-csv] <experiment>|all
//
// The experiment set comes from exp.Registry(), the same table the
// campaign scheduler (cmd/campaign) runs fleets from; `experiments all`
// regenerates everything except the calibration sweeps, which are
// diagnostic. Run `experiments list` for the full inventory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
)

func main() {
	seed := flag.Int64("seed", 42, "root random seed")
	n := flag.Int("n", 0, "corpus size override (0 = paper's size)")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	outDir := flag.String("out", "", "also write each experiment's CSV to <dir>/<id>.csv")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-seed N] [-n N] [-csv] <experiment>|all|list")
		os.Exit(2)
	}

	emit := func(r *exp.Result) {
		if *csv {
			fmt.Print(r.CSV())
		} else {
			fmt.Print(r.Render())
		}
		fmt.Println()
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
	run := func(s exp.Spec) {
		r := s.Run(*n, *seed)
		if s.Kind == exp.KindCalibration {
			// Calibration sweeps are free-form diagnostic text, not tables.
			fmt.Print(strings.Join(r.Plots, ""))
			return
		}
		emit(r)
	}

	switch name := flag.Arg(0); name {
	case "all":
		for _, s := range exp.Registry() {
			if s.Kind == exp.KindCalibration {
				continue
			}
			run(s)
		}
	case "list":
		for _, s := range exp.Registry() {
			fmt.Printf("%-24s %-12s %s\n", s.ID, s.Kind, s.Title)
		}
	default:
		s, err := exp.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run(s)
	}
}
