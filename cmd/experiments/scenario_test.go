package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const scenarioTestDoc = `{
  "schema": "scenario-v1",
  "name": "cli-corpus",
  "seed": 11,
  "count": 5,
  "duration_s": 5,
  "corpus": {"severity": [0.5, 1.5]}
}`

func writeScenarioSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(scenarioTestDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScenarioValidate(t *testing.T) {
	path := writeScenarioSpec(t)
	var out, errOut bytes.Buffer
	if err := runScenarioMode([]string{"validate", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ok ", "name=cli-corpus", "count=5", "hash="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("validate output missing %q: %q", want, out.String())
		}
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"scenario-v1","name":"x","duration_s":-1,"corpus":{}}`), 0o644)
	err := runScenarioMode([]string{"validate", bad}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "duration_s") {
		t.Errorf("invalid spec: err = %v, want a duration_s complaint", err)
	}
}

func TestScenarioGen(t *testing.T) {
	path := writeScenarioSpec(t)
	var out, errOut bytes.Buffer
	if err := runScenarioMode([]string{"gen", path, "-n", "3"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("gen -n 3 emitted %d lines", len(lines))
	}
	for i, line := range lines {
		var rec genRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Index != i {
			t.Errorf("line %d: index %d", i, rec.Index)
		}
		if rec.Params.Duration == 0 || rec.Device == "" || rec.Impairment == "" {
			t.Errorf("line %d: incomplete record %+v", i, rec)
		}
	}

	// -out writes one file per scenario.
	dir := filepath.Join(t.TempDir(), "corpus")
	out.Reset()
	if err := runScenarioMode([]string{"gen", path, "-out", dir}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("gen -out wrote %d files, want 5", len(entries))
	}
	if !strings.Contains(out.String(), "wrote 5 scenarios") {
		t.Errorf("gen -out summary: %q", out.String())
	}
}

func TestScenarioRun(t *testing.T) {
	path := writeScenarioSpec(t)
	var out, errOut bytes.Buffer
	if err := runScenarioMode([]string{"run", path, "-i", "1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"cli-corpus[1]", "stronger", "cross", "diversifi", "MOS="} {
		if !strings.Contains(text, want) {
			t.Errorf("run output missing %q:\n%s", want, text)
		}
	}
	if err := runScenarioMode([]string{"run", path, "-i", "9"}, &out, &errOut); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestScenarioUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{{}, {"bogus"}, {"validate"}, {"gen"}, {"run", "a", "b"}} {
		err := runScenarioMode(args, &out, &errOut)
		if _, ok := err.(usageError); !ok {
			t.Errorf("args %v: err = %v, want usageError", args, err)
		}
	}
}
