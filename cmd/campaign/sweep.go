package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/obsflag"
	"repro/internal/sweep"
)

// runSweep is `campaign sweep [expand|report] ...`: the fleet sweep
// driver. The plain form runs a spec to completion — in-process workers,
// optional HTTP control plane for remote `campaign worker` processes — and
// prints the merged Table-1-style summary (or, with -report, the full
// paper artifact). The expand form previews the job stream without running
// anything; the report form re-renders the artifact offline from a saved
// summary JSON.
func runSweep(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "expand" {
		return runSweepExpand(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "report" {
		return runSweepReport(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("campaign sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	local := fs.Int("local", 1, "in-process workers (0 = serve remote workers only, requires -http)")
	parallel := fs.Int("parallel", 0, "job concurrency per in-process worker (0 = NumCPU)")
	batch := fs.Int64("batch", 64, "max jobs per lease")
	ttl := fs.Duration("ttl", 30*time.Second, "lease TTL; a worker silent this long forfeits its span")
	cacheDir := fs.String("cache", campaign.DefaultCacheDir, "shared result cache directory")
	noCache := fs.Bool("no-cache", false, "bypass the result cache entirely")
	summaryPath := fs.String("summary", "", "write the summary JSON to this file")
	asJSON := fs.Bool("json", false, "print the output as JSON instead of text")
	report := fs.Bool("report", false, "print the paper-artifact report (Tables 1-3 + CDFs) instead of the summary table")
	quiet := fs.Bool("quiet", false, "suppress per-lease progress lines")
	obsFlags := obsflag.Register(fs)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: campaign sweep [flags] SPEC.json")
		fmt.Fprintln(stderr, "       campaign sweep expand [-n N] SPEC.json")
		fmt.Fprintln(stderr, "       campaign sweep report [-json] SUMMARY.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	spec, err := sweep.LoadSpec(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 2
	}
	if *local <= 0 && obsFlags.HTTP == "" {
		fmt.Fprintln(stderr, "campaign: -local 0 needs -http (nobody would run the jobs)")
		return 2
	}

	var cache *campaign.Cache
	if !*noCache {
		cache, err = campaign.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "campaign:", err)
			return 1
		}
	}

	sess, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 1
	}
	defer sess.Close()
	sess.HandleSignals("sweep")
	if err := sweep.ValidateSLOBindings(sess.SLO().RuleSet()); err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 2
	}

	coord := sweep.NewCoordinator(spec, sweep.CoordinatorOptions{
		Batch: *batch, TTL: *ttl,
		Obs: sess.Reg, Flight: sess.Flight(), FlightDir: sess.FlightDir(),
		SLO: sess.SLO().RuleSet(),
	})
	if srv := sess.HTTP(); srv != nil {
		coord.Routes(srv)
	}
	if !*quiet {
		fmt.Fprintf(stderr, "sweep %q: %s (spec %s)\n",
			spec.Name, spec.Grid(), spec.Hash())
	}

	var progress io.Writer
	if !*quiet {
		progress = stderr
	}
	var wg sync.WaitGroup
	errs := make([]error, *local)
	for w := 0; w < *local; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			_, errs[n] = sweep.RunWorker(sweep.LocalTransport{C: coord},
				&sweep.Runner{Cache: cache,
					Flight: sess.Flight(), FlightDir: sess.FlightDir()},
				sweep.WorkerOptions{
					Name:     fmt.Sprintf("local%d", n),
					Parallel: *parallel,
					Progress: progress,
					SLO:      sess.SLO(),
				})
		}(w)
	}
	wg.Wait()
	for _, werr := range errs {
		if werr != nil {
			fmt.Fprintln(stderr, "campaign:", werr)
			return 1
		}
	}
	// With -local 0 every job runs on remote workers; block on the
	// coordinator instead of the (empty) local pool.
	<-coord.Finished()

	sum := coord.Summary()
	if *summaryPath != "" {
		data, jerr := sum.JSON()
		if jerr == nil {
			jerr = os.WriteFile(*summaryPath, data, 0o644)
		}
		if jerr != nil {
			fmt.Fprintln(stderr, "campaign: write summary:", jerr)
			return 1
		}
	}
	if err := emitSweepOutput(sum, *report, *asJSON, stdout); err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 1
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 1
	}
	if sum.Failed > 0 {
		return 1
	}
	return 0
}

// runSweepExpand is `campaign sweep expand`: count a spec's job stream and
// preview its first jobs without running anything. The stream is lazy, so
// this is instant even for a million-job spec.
func runSweepExpand(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign sweep expand", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int64("n", 0, "also list the first N jobs (0 = just the count)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: campaign sweep expand [-n N] SPEC.json")
		return 2
	}
	spec, err := sweep.LoadSpec(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 2
	}
	fmt.Fprintf(stdout, "sweep %q (spec %s): %s\n",
		spec.Name, spec.Hash(), spec.Grid())
	limit := *n
	if limit > spec.Total() {
		limit = spec.Total()
	}
	for i := int64(0); i < limit; i++ {
		j, err := spec.JobAt(i)
		if err != nil {
			fmt.Fprintln(stderr, "campaign:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%8d  %-32s seed %-8d key %s\n", j.Index, j.CellKey(), j.Seed, j.Key())
	}
	return 0
}

// emitSweepOutput prints a finished sweep either as the one-line-per-cell
// summary or, with report set, as the full paper artifact rendered from the
// merged sketches.
func emitSweepOutput(sum *sweep.Summary, report, asJSON bool, stdout io.Writer) error {
	if report {
		rep, err := sum.Report()
		if err != nil {
			return err
		}
		if asJSON {
			data, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, string(data))
			return nil
		}
		fmt.Fprint(stdout, rep.Text())
		return nil
	}
	if asJSON {
		data, err := sum.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
		return nil
	}
	fmt.Fprint(stdout, sum.Text())
	return nil
}

// runSweepReport is `campaign sweep report SUMMARY.json`: re-render the
// paper artifact (Tables 1-3, MOS quantiles, CDF figures) offline from a
// summary written by `campaign sweep -summary`. Nothing is re-run — the
// report comes entirely from the merged sketches in the file.
func runSweepReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign sweep report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "print the report as JSON instead of text")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: campaign sweep report [-json] SUMMARY.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 2
	}
	sum, err := sweep.LoadSummary(data)
	if err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 2
	}
	if err := emitSweepOutput(sum, true, *asJSON, stdout); err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 1
	}
	return 0
}

// runWorkerCmd is `campaign worker -connect ADDR`: one sharded sweep worker.
// It pulls job leases from a coordinator's control plane, runs them through
// the shared cache, and reports merged sketches until the sweep completes.
func runWorkerCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	connect := fs.String("connect", "", "coordinator address (host:port or http://host:port) — required")
	name := fs.String("name", "", "worker name in the fleet view (default host:pid)")
	parallel := fs.Int("parallel", 0, "job concurrency (0 = NumCPU)")
	batch := fs.Int64("batch", 0, "max jobs per lease (0 = coordinator's cap)")
	cacheDir := fs.String("cache", campaign.DefaultCacheDir, "shared result cache directory")
	noCache := fs.Bool("no-cache", false, "bypass the result cache entirely")
	quiet := fs.Bool("quiet", false, "suppress per-lease progress lines")
	obsFlags := obsflag.Register(fs)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: campaign worker -connect ADDR [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *connect == "" || fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	var cache *campaign.Cache
	if !*noCache {
		var err error
		cache, err = campaign.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "campaign:", err)
			return 1
		}
	}
	sess, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 1
	}
	defer sess.Close()
	sess.HandleSignals("worker")
	var progress io.Writer
	if !*quiet {
		progress = stderr
	}
	stats, err := sweep.RunWorker(sweep.NewHTTPTransport(*connect),
		&sweep.Runner{Cache: cache,
			Flight: sess.Flight(), FlightDir: sess.FlightDir()},
		sweep.WorkerOptions{Name: *name, Parallel: *parallel, Batch: *batch, Progress: progress,
			Obs: sess.Reg, Flight: sess.Flight(), FlightDir: sess.FlightDir(),
			SLO: sess.SLO()})
	if err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 1
	}
	if cerr := sess.Close(); cerr != nil {
		fmt.Fprintln(stderr, "campaign:", cerr)
		return 1
	}
	fmt.Fprintf(stdout, "%s: sweep done — %d leases, %d jobs (%d executed, %d cached, %d failed, %d expired)\n",
		*name, stats.Leases, stats.Jobs, stats.Executed, stats.Cached, stats.Failed, stats.Ignored)
	if stats.Failed > 0 {
		return 1
	}
	return 0
}

// runCacheCmd is `campaign cache stat|gc`: inspect and prune the shared
// content-addressed result cache.
func runCacheCmd(args []string, stdout, stderr io.Writer) int {
	usage := func() {
		fmt.Fprintln(stderr, "usage: campaign cache stat [-cache DIR]")
		fmt.Fprintln(stderr, "       campaign cache gc [-cache DIR] [-max-age D] [-max-bytes N]")
	}
	if len(args) == 0 {
		usage()
		return 2
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("campaign cache "+sub, flag.ContinueOnError)
	fs.SetOutput(stderr)
	cacheDir := fs.String("cache", campaign.DefaultCacheDir, "result cache directory")
	maxAge := fs.Duration("max-age", 0, "gc: drop entries older than this (0 = no age rule)")
	maxBytes := fs.Int64("max-bytes", 0, "gc: then drop oldest entries until the cache fits this budget (0 = no size rule)")
	if err := fs.Parse(rest); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		usage()
		return 2
	}
	cache, err := campaign.OpenCache(*cacheDir)
	if err != nil {
		fmt.Fprintln(stderr, "campaign:", err)
		return 1
	}
	switch sub {
	case "stat":
		st, err := cache.Stat()
		if err != nil {
			fmt.Fprintln(stderr, "campaign:", err)
			return 1
		}
		fmt.Fprintf(stdout, "cache %s: %d entries, %s\n", st.Dir, st.Entries, fmtBytes(st.Bytes))
		if st.Entries > 0 {
			fmt.Fprintf(stdout, "oldest %s, newest %s\n",
				(time.Duration(st.OldestAgeMS) * time.Millisecond).Round(time.Second),
				(time.Duration(st.NewestAgeMS) * time.Millisecond).Round(time.Second))
		}
		return 0
	case "gc":
		if *maxAge == 0 && *maxBytes == 0 {
			fmt.Fprintln(stderr, "campaign: gc needs -max-age and/or -max-bytes (refusing to guess)")
			return 2
		}
		res, err := cache.GC(*maxAge, *maxBytes)
		if err != nil {
			fmt.Fprintln(stderr, "campaign:", err)
			return 1
		}
		fmt.Fprintf(stdout, "gc %s: removed %d entries (%s), kept %d (%s)\n",
			cache.Dir(), res.Removed, fmtBytes(res.RemovedBytes), res.Kept, fmtBytes(res.KeptBytes))
		return 0
	default:
		usage()
		return 2
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
