package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/campaign"
)

// runWatch implements `campaign watch [flags] ADDR`: poll a running
// campaign's /campaign/status endpoint (served when the driver was started
// with -http) and redraw its fleet table in the terminal until the
// campaign finishes. ADDR is the driver's listen address as announced on
// its stderr (host:port, with or without the http:// scheme).
func runWatch(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	interval := fs.Duration("interval", 2*time.Second, "polling interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	noClear := fs.Bool("no-clear", false, "append frames instead of clearing the screen")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: campaign watch [-interval D] [-once] [-no-clear] ADDR")
		return 2
	}
	url := fs.Arg(0)
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + "/campaign/status"

	client := &http.Client{Timeout: 5 * time.Second}
	const maxFailures = 3
	failures := 0
	sawRunning := false
	for {
		snap, err := fetchStatus(client, url)
		switch {
		case err != nil:
			failures++
			if failures >= maxFailures {
				fmt.Fprintf(stderr, "campaign watch: %v (%d consecutive failures)\n", err, failures)
				return 1
			}
		default:
			failures = 0
			if !*noClear && !*once {
				fmt.Fprint(stdout, "\x1b[H\x1b[2J") // cursor home + clear screen
			}
			fmt.Fprint(stdout, snap.Text())
			if *once {
				return 0
			}
			if snap.Running {
				sawRunning = true
			} else if sawRunning || (snap.Total > 0 && snap.Done >= snap.Total) {
				fmt.Fprintln(stdout, "campaign finished.")
				return 0
			}
		}
		time.Sleep(*interval)
	}
}

// fetchStatus pulls and decodes one fleet snapshot.
func fetchStatus(client *http.Client, url string) (*campaign.StatusSnapshot, error) {
	res, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, res.Status)
	}
	var snap campaign.StatusSnapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	if snap.Schema != campaign.StatusSchema {
		return nil, fmt.Errorf("%s: unexpected schema %q (want %q)", url, snap.Schema, campaign.StatusSchema)
	}
	return &snap, nil
}
