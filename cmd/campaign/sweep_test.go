package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/sweep"
)

// writeSpec drops a sweep spec file into a temp dir.
func writeSpec(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// tinySpec is small enough to run real simulator calls in a unit test:
// 1 cell × 2 seeds of a 5-second call.
const tinySpec = `{"name":"tiny","seeds":{"start":7,"count":2},"duration_s":5,
	"impairments":["weak-link"],"device_classes":["pc"],"ap_densities":["typical"]}`

func TestSweepExpandPreview(t *testing.T) {
	path := writeSpec(t, `{"name":"preview","seeds":{"count":1000000}}`)
	var out, errOut bytes.Buffer
	if code := runSweep([]string{"expand", "-n", "3", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "30 cells × 1000000 seeds = 30000000 jobs") {
		t.Errorf("missing count line:\n%s", text)
	}
	if got := strings.Count(text, "key "); got != 3 {
		t.Errorf("previewed %d jobs, want 3:\n%s", got, text)
	}
}

func TestSweepExpandRejectsBadSpec(t *testing.T) {
	path := writeSpec(t, `{"name":"bad","seeds":{"count":1},"impairments":["warp"]}`)
	var out, errOut bytes.Buffer
	if code := runSweep([]string{"expand", path}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut.String(), "unknown impairment") {
		t.Errorf("stderr: %q", errOut.String())
	}
}

var fingerprintRe = regexp.MustCompile(`fingerprint ([0-9a-f]{32})`)

// TestSweepRunsRealJobs drives `campaign sweep` end to end on the real
// simulator twice over a shared cache: the second run must be all cache
// hits and report the identical fingerprint.
func TestSweepRunsRealJobs(t *testing.T) {
	spec := writeSpec(t, tinySpec)
	cache := filepath.Join(t.TempDir(), "cache")

	var out1, err1 bytes.Buffer
	if code := runSweep([]string{"-cache", cache, "-quiet", spec}, &out1, &err1); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, err1.String())
	}
	text := out1.String()
	if !strings.Contains(text, "Fleet sweep") || !strings.Contains(text, "weak-link") {
		t.Errorf("summary:\n%s", text)
	}
	fp1 := fingerprintRe.FindStringSubmatch(text)
	if fp1 == nil {
		t.Fatalf("no fingerprint line:\n%s", text)
	}

	sumPath := filepath.Join(t.TempDir(), "sum.json")
	var out2, err2 bytes.Buffer
	if code := runSweep([]string{"-cache", cache, "-quiet", "-json", "-summary", sumPath, spec}, &out2, &err2); code != 0 {
		t.Fatalf("second run exit %d, stderr %q", code, err2.String())
	}
	var sum sweep.Summary
	if err := json.Unmarshal(out2.Bytes(), &sum); err != nil {
		t.Fatalf("-json output: %v", err)
	}
	if sum.Schema != sweep.SummarySchema {
		t.Errorf("schema %q", sum.Schema)
	}
	if sum.Fingerprint != fp1[1] {
		t.Errorf("warm fingerprint %s != cold %s", sum.Fingerprint, fp1[1])
	}
	if sum.Cached != 2 || sum.Executed != 0 {
		t.Errorf("warm run executed=%d cached=%d, want all cached", sum.Executed, sum.Cached)
	}
	if _, err := os.Stat(sumPath); err != nil {
		t.Errorf("-summary file: %v", err)
	}
}

// TestSweepReportRoundTrip runs a real sweep with -report, then re-renders
// the identical artifact offline with `sweep report` from the -summary file.
func TestSweepReportRoundTrip(t *testing.T) {
	spec := writeSpec(t, tinySpec)
	cache := filepath.Join(t.TempDir(), "cache")
	sumPath := filepath.Join(t.TempDir(), "sum.json")

	var live, errOut bytes.Buffer
	if code := runSweep([]string{"-cache", cache, "-quiet", "-report", "-summary", sumPath, spec}, &live, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	text := live.String()
	for _, want := range []string{"Paper artifact", "Table 1", "Table 2", "Table 3", "MOS CDF"} {
		if !strings.Contains(text, want) {
			t.Errorf("live report missing %q:\n%s", want, text)
		}
	}

	var offline bytes.Buffer
	errOut.Reset()
	if code := runSweepReport([]string{sumPath}, &offline, &errOut); code != 0 {
		t.Fatalf("report exit %d, stderr %q", code, errOut.String())
	}
	if offline.String() != text {
		t.Error("offline `sweep report` differs from live -report output")
	}

	var jsonOut bytes.Buffer
	errOut.Reset()
	if code := runSweepReport([]string{"-json", sumPath}, &jsonOut, &errOut); code != 0 {
		t.Fatalf("report -json exit %d, stderr %q", code, errOut.String())
	}
	var rep sweep.Report
	if err := json.Unmarshal(jsonOut.Bytes(), &rep); err != nil {
		t.Fatalf("report -json output: %v", err)
	}
	if rep.Schema != sweep.ReportSchema {
		t.Errorf("report schema %q", rep.Schema)
	}
}

func TestSweepReportRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sum.json")
	if err := os.WriteFile(path, []byte(`{"schema":"sweep-summary-v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := runSweepReport([]string{path}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut.String(), "sweep-summary") {
		t.Errorf("stderr: %q", errOut.String())
	}
	if code := runSweepReport(nil, &out, &errOut); code != 2 {
		t.Fatalf("usage exit %d", code)
	}
}

func TestSweepUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runSweep(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("stderr: %q", errOut.String())
	}
}

func TestSweepServeOnlyNeedsHTTP(t *testing.T) {
	spec := writeSpec(t, tinySpec)
	var out, errOut bytes.Buffer
	if code := runSweep([]string{"-local", "0", spec}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut.String(), "-http") {
		t.Errorf("stderr: %q", errOut.String())
	}
}

func TestWorkerCmdUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runWorkerCmd(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut.String(), "-connect") {
		t.Errorf("stderr: %q", errOut.String())
	}
}

func TestCacheStatAndGC(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cache, err := campaign.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cache.StoreRaw(strings.Repeat("ab", 8)+string(rune('a'+i)), bytes.Repeat([]byte("x"), 100)); err != nil {
			t.Fatal(err)
		}
	}

	var out, errOut bytes.Buffer
	if code := runCacheCmd([]string{"stat", "-cache", dir}, &out, &errOut); code != 0 {
		t.Fatalf("stat exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "5 entries") {
		t.Errorf("stat output: %q", out.String())
	}

	// gc with no rules must refuse.
	out.Reset()
	errOut.Reset()
	if code := runCacheCmd([]string{"gc", "-cache", dir}, &out, &errOut); code != 2 {
		t.Fatalf("ruleless gc exit %d", code)
	}

	// Size-rule gc drops oldest entries down to the budget.
	out.Reset()
	errOut.Reset()
	if code := runCacheCmd([]string{"gc", "-cache", dir, "-max-bytes", "250"}, &out, &errOut); code != 0 {
		t.Fatalf("gc exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "removed 3") || !strings.Contains(out.String(), "kept 2") {
		t.Errorf("gc output: %q", out.String())
	}

	st, err := cache.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Bytes != 200 {
		t.Errorf("after gc: %d entries, %d bytes", st.Entries, st.Bytes)
	}
}

func TestCacheCmdUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runCacheCmd(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d", code)
	}
	if code := runCacheCmd([]string{"defrag"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown subcommand exit %d", code)
	}
}
