package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
)

// scriptedStatus serves a sequence of fleet snapshots, one per request,
// repeating the last one once the script is exhausted.
func scriptedStatus(t *testing.T, snaps ...campaign.StatusSnapshot) *httptest.Server {
	t.Helper()
	var n atomic.Int32
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(n.Add(1)) - 1
		if i >= len(snaps) {
			i = len(snaps) - 1
		}
		snap := snaps[i]
		if snap.Schema == "" {
			snap.Schema = campaign.StatusSchema
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap)
	}))
}

func TestWatchFollowsRunToCompletion(t *testing.T) {
	srv := scriptedStatus(t,
		campaign.StatusSnapshot{}, // tracker up, fleet not begun: keep polling
		campaign.StatusSnapshot{Running: true, Total: 3, Done: 1, Executed: 1,
			Active: []campaign.ActiveJob{{ID: "fig2a", Seed: 42, N: 100, ElapsedMS: 50}}},
		campaign.StatusSnapshot{Running: false, Total: 3, Done: 3, Executed: 2, Failed: 1,
			Recent: []campaign.JobRecord{{ID: "fig2a", Status: "ok", ElapsedMS: 120}}},
	)
	defer srv.Close()

	var out, errOut bytes.Buffer
	code := runWatch([]string{"-interval", "5ms", "-no-clear", srv.URL}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"Campaign fleet", "fig2a", "1/3", "3/3", "campaign finished."} {
		if !strings.Contains(text, want) {
			t.Errorf("watch output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "\x1b[2J") {
		t.Error("-no-clear still cleared the screen")
	}
}

func TestWatchExitsWhenFinishedFleetFound(t *testing.T) {
	// Attaching after the campaign ended: running=false with done==total>0
	// must print one frame and exit cleanly, not poll forever.
	srv := scriptedStatus(t, campaign.StatusSnapshot{Total: 2, Done: 2, Executed: 2})
	defer srv.Close()
	var out, errOut bytes.Buffer
	if code := runWatch([]string{"-interval", "5ms", "-no-clear", srv.URL}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "campaign finished.") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestWatchOnce(t *testing.T) {
	srv := scriptedStatus(t, campaign.StatusSnapshot{Running: true, Total: 1})
	defer srv.Close()
	var out, errOut bytes.Buffer
	addr := strings.TrimPrefix(srv.URL, "http://") // bare host:port must work too
	if code := runWatch([]string{"-once", addr}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Campaign fleet") {
		t.Errorf("output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "\x1b[2J") {
		t.Error("-once cleared the screen")
	}
}

func TestWatchAgainstRealTracker(t *testing.T) {
	// End-to-end over the real Status handler: a finished fleet snapshot
	// from campaign.Run must satisfy the watch client's schema check.
	st := campaign.NewStatus()
	sum := campaign.Run(campaign.Options{Status: st})
	if sum.Total() != 0 {
		t.Fatalf("empty fleet ran %d jobs", sum.Total())
	}
	srv := httptest.NewServer(st)
	defer srv.Close()
	var out, errOut bytes.Buffer
	if code := runWatch([]string{"-once", srv.URL}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
}

func TestWatchServerGone(t *testing.T) {
	srv := scriptedStatus(t, campaign.StatusSnapshot{})
	url := srv.URL
	srv.Close()
	var out, errOut bytes.Buffer
	if code := runWatch([]string{"-interval", "1ms", url}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "consecutive failures") {
		t.Errorf("stderr: %q", errOut.String())
	}
}

func TestWatchUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runWatch(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("stderr: %q", errOut.String())
	}
}

func TestWatchRejectsWrongSchema(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"schema":"something-else"}`))
	}))
	defer srv.Close()
	var out, errOut bytes.Buffer
	if code := runWatch([]string{"-interval", "1ms", srv.URL}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unexpected schema") {
		t.Errorf("stderr: %q", errOut.String())
	}
}
