// Command campaign runs fleets of experiments through the sharded,
// resumable, cached scheduler in internal/campaign.
//
// Usage:
//
//	campaign [-jobs all|kind|id,id,...] [-seed N] [-n N] [-workers N]
//	         [-timeout D] [-cache DIR] [-no-cache] [-out DIR]
//	         [-summary FILE] [-json] [-quiet] [-list]
//	         [-metrics FILE] [-trace FILE] [-series PATH[,WINDOW]]
//	         [-pprof DIR] [-http ADDR] [-flight DIR[,N]]
//	campaign watch [-interval D] [-once] [-no-clear] ADDR
//	campaign sweep [-local N] [-parallel N] [-batch N] [-ttl D]
//	         [-cache DIR] [-no-cache] [-summary FILE] [-json] [-report]
//	         [-quiet] [-http ADDR] [-trace FILE] [-flight DIR[,N]] SPEC.json
//	campaign sweep expand [-n N] SPEC.json
//	campaign sweep report [-json] SUMMARY.json
//	campaign worker -connect ADDR [-name NAME] [-parallel N] [-batch N]
//	         [-cache DIR] [-no-cache] [-quiet] [-trace FILE] [-flight DIR[,N]]
//	campaign cache stat|gc [-cache DIR] [-max-age D] [-max-bytes N]
//
// Every experiment registered in exp.Registry() is a job addressed by
// (id, seed, n, config hash). Completed jobs persist their results under
// the cache directory, so re-running a campaign is instant and an
// interrupted campaign resumes from where it stopped. The process exits
// nonzero if any job failed, but a failing job never aborts the fleet.
//
// The observability flags (-metrics, -trace, -series, -pprof, -http) are
// shared with cmd/experiments; see docs/OBSERVABILITY.md. Jobs run
// concurrently, so simulator-level metrics aggregate across the fleet, with
// trace lines distinguished by their per-simulation run label. With -http
// set the driver additionally serves the live fleet view at
// /campaign/status, which `campaign watch ADDR` renders as a refreshing
// terminal table.
//
// The sweep subcommands drive the fleet sweep engine (internal/sweep, see
// docs/FLEET.md): `sweep` runs a declarative grid spec to a merged
// sketch-backed summary (with -report, the full paper artifact of
// docs/RESULTS.md — Tables 1-3 plus CDF figures), `sweep expand` previews
// the lazy job stream, `sweep report` re-renders the artifact offline from
// a saved -summary file, `worker` joins a remote coordinator's sweep over
// its control plane, and `cache` inspects or prunes the shared
// content-addressed result cache.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
	"repro/internal/exp"
	"repro/internal/obsflag"
)

func main() { os.Exit(run()) }

func run() int {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "watch":
			return runWatch(os.Args[2:], os.Stdout, os.Stderr)
		case "sweep":
			return runSweep(os.Args[2:], os.Stdout, os.Stderr)
		case "worker":
			return runWorkerCmd(os.Args[2:], os.Stdout, os.Stderr)
		case "cache":
			return runCacheCmd(os.Args[2:], os.Stdout, os.Stderr)
		}
	}
	jobsSel := flag.String("jobs", "all", "fleet selector: all, a kind (table, figure, scaling, ablation, extension, calibration), or a comma-separated id list")
	seed := flag.Int64("seed", 42, "root random seed")
	n := flag.Int("n", 0, "corpus size override (0 = each experiment's paper size)")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = NumCPU)")
	timeout := flag.Duration("timeout", 15*time.Minute, "per-job wall-clock timeout (0 = none)")
	cacheDir := flag.String("cache", campaign.DefaultCacheDir, "result cache directory")
	noCache := flag.Bool("no-cache", false, "bypass the result cache entirely")
	outDir := flag.String("out", "", "also write each successful job's CSV to <dir>/<id>.csv")
	summaryPath := flag.String("summary", "", "write the summary JSON to this file")
	asJSON := flag.Bool("json", false, "print the summary as JSON instead of text")
	quiet := flag.Bool("quiet", false, "suppress per-job progress lines")
	list := flag.Bool("list", false, "list registered experiments and exit")
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, s := range exp.Registry() {
			fmt.Printf("%-24s %-12s n=%-4d %s\n", s.ID, s.Kind, s.DefaultN, s.Title)
		}
		return 0
	}

	jobs, err := campaign.JobsFor(*jobsSel, *seed, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		return 2
	}

	var cache *campaign.Cache
	if !*noCache {
		cache, err = campaign.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
	}

	sess, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		return 1
	}
	defer sess.Close()
	sess.HandleSignals("campaign")

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	var onResult func(campaign.Job, *exp.Result)
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		onResult = func(j campaign.Job, r *exp.Result) {
			path := filepath.Join(*outDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "campaign: write csv:", err)
			}
		}
	}

	var status *campaign.Status
	if srv := sess.HTTP(); srv != nil {
		status = campaign.NewStatus()
		srv.Handle("/campaign/status", status)
	}

	sum := campaign.Run(campaign.Options{
		Jobs:      jobs,
		Workers:   *workers,
		Timeout:   *timeout,
		Retries:   1,
		Cache:     cache,
		Progress:  progress,
		OnResult:  onResult,
		Obs:       sess.Reg,
		Status:    status,
		Flight:    sess.Flight(),
		FlightDir: sess.FlightDir(),
	})

	if *summaryPath != "" {
		data, err := sum.JSON()
		if err == nil {
			err = os.WriteFile(*summaryPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign: write summary:", err)
			return 1
		}
	}
	if *asJSON {
		data, err := sum.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "campaign:", err)
			return 1
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(sum.Text())
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		return 1
	}
	if sum.Failed > 0 {
		return 1
	}
	return 0
}
