// Command apemu runs the live "Customized AP" emulator (§5.3.1): a
// PSM-buffering forwarder with a shallow head-drop queue, speaking the
// same REGISTER/START/STOP control protocol as the middlebox (START =
// wake, STOP = sleep; selection is implicit).
//
// Usage:
//
//	apemu [-data 127.0.0.1:7100] [-ctrl 127.0.0.1:7101] [-depth 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/emu"
)

func main() {
	data := flag.String("data", "127.0.0.1:7100", "data socket (replicated stream copies)")
	ctrl := flag.String("ctrl", "127.0.0.1:7101", "control socket")
	depth := flag.Int("depth", 5, "head-drop PSM buffer depth")
	flag.Parse()

	a, err := emu.NewAPEmu(*data, *ctrl, *depth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apemu:", err)
		os.Exit(1)
	}
	defer a.Close()
	fmt.Printf("customized-AP emulator up: data %s, control %s, depth %d\n", a.DataAddr(), a.CtrlAddr(), *depth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	sent, dropped := a.Counts()
	fmt.Printf("apemu shutting down: sent %d, head-dropped %d\n", sent, dropped)
}
