#!/bin/sh
# slo-smoke.sh — end-to-end check of the streaming SLO engine: run a long
# weak-link DiversiFi call with the paper's rule set (examples/slo/paper.yaml)
# armed via -slo, poll the live /alerts endpoint until the miss-rate rule has
# fired, assert the slo_* families are exposed on /metrics while alerts are
# live, and after the run reconstruct the full pending→firing→resolved
# lifecycle from the slo-trace-v1 events with `tracetool slo`. CI runs this
# on every push, next to http-smoke.sh.
#
# The scenario is a fixed-seed 7200 s weak-link call run diversifi-only
# (-strategy diversifi keeps the process on a single simulation, so the
# series collector that drives the engine sees every window). The draw is
# deterministic, so the lifecycle this script asserts is reproducible.
#
# POSIX sh; depends only on the Go toolchain and curl.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
run_pid=""
cleanup() {
    [ -n "$run_pid" ] && kill "$run_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/experiments" ./cmd/experiments
go build -o "$tmp/tracetool" ./cmd/tracetool
go build -o "$tmp/promcheck" ./cmd/promcheck

cat >"$tmp/weak-link.yaml" <<'SPEC'
schema: scenario-v1
name: slo-smoke
seed: 404
duration_s: 7200
profile: g711
spine:
  draw:
    impairment: weak-link
    severity: 1.5
    stream: simtest/corpus
SPEC

: >"$tmp/stderr"
"$tmp/experiments" -slo examples/slo/paper.yaml -trace "$tmp/trace.jsonl" \
    -http 127.0.0.1:0 scenario run -strategy diversifi "$tmp/weak-link.yaml" \
    >"$tmp/stdout" 2>"$tmp/stderr" &
run_pid=$!

# Wait for the announce line and extract the bound address.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's#^obsflag: live endpoints on http://\([^ ]*\).*#\1#p' "$tmp/stderr")
    [ -n "$addr" ] && break
    if ! kill -0 "$run_pid" 2>/dev/null; then
        echo "slo-smoke: run exited before announcing its endpoint" >&2
        cat "$tmp/stderr" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "slo-smoke: no announce line within 10s" >&2
    cat "$tmp/stderr" >&2
    exit 1
fi
echo "slo-smoke: polling http://$addr/alerts"

# Poll /alerts until the miss-rate rule reports a nonzero fired count. The
# counter is cumulative and monotone, so this converges as soon as the first
# firing transition happens — no race against the alert resolving again.
fired=""
i=0
while [ $i -lt 400 ]; do
    if curl -fsS --max-time 2 "http://$addr/alerts" >"$tmp/alerts.json" 2>/dev/null; then
        if awk '/"name": "miss-rate"/ { in_rule = 1; next }
                in_rule && /"name":/ { exit }
                in_rule && /"fired":/ && $NF + 0 > 0 { ok = 1 }
                END { exit !ok }' "$tmp/alerts.json"; then
            fired=yes
            break
        fi
    fi
    if ! kill -0 "$run_pid" 2>/dev/null; then
        break
    fi
    sleep 0.05
    i=$((i + 1))
done
if [ -z "$fired" ]; then
    echo "slo-smoke: miss-rate rule never fired on /alerts" >&2
    cat "$tmp/alerts.json" 2>/dev/null >&2 || true
    exit 1
fi
grep -q '"schema": "slo-alerts-v1"' "$tmp/alerts.json" || {
    echo "slo-smoke: /alerts missing schema marker" >&2
    cat "$tmp/alerts.json" >&2
    exit 1
}
echo "slo-smoke: miss-rate fired live on /alerts"

# With an alert known to have fired, the slo_* families must be on /metrics
# and the exposition must still validate.
"$tmp/promcheck" -retry 5 -interval 100ms "http://$addr/metrics"
curl -fsS --max-time 5 "http://$addr/metrics" >"$tmp/metrics.txt" || {
    echo "slo-smoke: GET /metrics failed" >&2
    exit 1
}
for name in slo_alert_state slo_rule_value slo_rule_fired_total; do
    grep -q "^$name" "$tmp/metrics.txt" || {
        echo "slo-smoke: /metrics missing $name" >&2
        cat "$tmp/metrics.txt" >&2
        exit 1
    }
done
grep '^slo_rule_fired_total{rule="miss-rate"}' "$tmp/metrics.txt" |
    grep -qv ' 0$' || {
    echo "slo-smoke: slo_rule_fired_total{rule=\"miss-rate\"} still zero" >&2
    exit 1
}
echo "slo-smoke: slo_* families exposed on /metrics"

if ! wait "$run_pid"; then
    echo "slo-smoke: run exited nonzero" >&2
    cat "$tmp/stderr" >&2
    exit 1
fi
run_pid=""

# Reconstruct the lifecycle offline: the trace must lint clean and contain
# at least one complete pending→firing→resolved episode of the miss-rate
# rule (a resolved transition after a firing one).
"$tmp/tracetool" slo "$tmp/trace.jsonl" >"$tmp/slo.txt"
grep -q '^slo lint: clean' "$tmp/slo.txt" || {
    echo "slo-smoke: trace linted dirty" >&2
    cat "$tmp/slo.txt" >&2
    exit 1
}
awk '$1 == "miss-rate" && $4 != "-" && $5 != "-" && $6 == "resolved" { ok = 1 }
     END { exit !ok }' "$tmp/slo.txt" || {
    echo "slo-smoke: no complete miss-rate pending->firing->resolved episode in trace" >&2
    cat "$tmp/slo.txt" >&2
    exit 1
}
echo "slo-smoke: full alert lifecycle reconstructed from trace"
echo "slo-smoke: ok"
