#!/bin/sh
# http-smoke.sh — end-to-end check of the live control plane: launch a real
# campaign fleet with -http, scrape /healthz, /metrics, and /campaign/status
# while the fleet is running, and validate the exposition with the in-repo
# promcheck (no external promtool needed). CI runs this on every push.
#
# The campaign binds 127.0.0.1:0 and announces the picked port on stderr
# ("obsflag: live endpoints on http://ADDR ..."); the script parses that
# line, so it also exercises the announce contract scripts are told to rely
# on in docs/OBSERVABILITY.md.
#
# POSIX sh; depends only on the Go toolchain.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
campaign_pid=""
cleanup() {
    [ -n "$campaign_pid" ] && kill "$campaign_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# Prebuild so the scrape window starts when the process does, not after an
# in-band compile.
go build -o "$tmp/campaign" ./cmd/campaign
go build -o "$tmp/promcheck" ./cmd/promcheck

# Two full-size figure fleets give a multi-second window; -no-cache keeps
# the window open on warm CI caches.
"$tmp/campaign" -jobs fig2a,fig2b -no-cache -quiet -workers 2 \
    -cache "$tmp/cache" -http 127.0.0.1:0 >"$tmp/stdout" 2>"$tmp/stderr" &
campaign_pid=$!

# Wait for the announce line and extract the bound address.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's#^obsflag: live endpoints on http://\([^ ]*\).*#\1#p' "$tmp/stderr")
    [ -n "$addr" ] && break
    if ! kill -0 "$campaign_pid" 2>/dev/null; then
        echo "http-smoke: campaign exited before announcing its endpoint" >&2
        cat "$tmp/stderr" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "http-smoke: no announce line within 10s" >&2
    cat "$tmp/stderr" >&2
    exit 1
fi
echo "http-smoke: scraping http://$addr"

# Mid-run scrapes. promcheck retries cover the race between the announce
# and the listener accepting.
"$tmp/promcheck" -retry 20 -interval 100ms -expect-body ok "http://$addr/healthz"
"$tmp/promcheck" -retry 5 -interval 100ms "http://$addr/metrics"

# The fleet view must be served and carry its schema marker.
status=$(curl -fsS --max-time 5 "http://$addr/campaign/status" 2>/dev/null) || {
    echo "http-smoke: GET /campaign/status failed" >&2
    exit 1
}
case "$status" in
*campaign-status-v1*) ;;
*)
    echo "http-smoke: /campaign/status missing schema marker:" >&2
    echo "$status" >&2
    exit 1
    ;;
esac

# The fleet itself must finish cleanly with the scrapers attached.
if ! wait "$campaign_pid"; then
    echo "http-smoke: campaign exited nonzero" >&2
    cat "$tmp/stderr" >&2
    exit 1
fi
campaign_pid=""
echo "http-smoke: ok"
