#!/bin/sh
# http-smoke.sh — end-to-end check of the live control plane: launch a real
# campaign fleet with -http, scrape /healthz, /metrics, and /campaign/status
# while the fleet is running, and validate the exposition with the in-repo
# promcheck (no external promtool needed). A second phase runs a sweep
# coordinator and scrapes its merged /metrics mid-sweep, asserting the
# fleet federation counters (sweep_fleet_*, docs/FLEET.md) are exposed and
# the exposition still validates. CI runs this on every push.
#
# The campaign binds 127.0.0.1:0 and announces the picked port on stderr
# ("obsflag: live endpoints on http://ADDR ..."); the script parses that
# line, so it also exercises the announce contract scripts are told to rely
# on in docs/OBSERVABILITY.md.
#
# POSIX sh; depends only on the Go toolchain.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
campaign_pid=""
sweep_pid=""
cleanup() {
    for pid in "$campaign_pid" "$sweep_pid"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# Prebuild so the scrape window starts when the process does, not after an
# in-band compile.
go build -o "$tmp/campaign" ./cmd/campaign
go build -o "$tmp/promcheck" ./cmd/promcheck

# Two full-size figure fleets give a multi-second window; -no-cache keeps
# the window open on warm CI caches. Pre-create the stderr file so the
# announce poll below never races the background process into a sed
# failure under set -e.
: >"$tmp/stderr"
"$tmp/campaign" -jobs fig2a,fig2b -no-cache -quiet -workers 2 \
    -cache "$tmp/cache" -http 127.0.0.1:0 >"$tmp/stdout" 2>"$tmp/stderr" &
campaign_pid=$!

# Wait for the announce line and extract the bound address.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's#^obsflag: live endpoints on http://\([^ ]*\).*#\1#p' "$tmp/stderr")
    [ -n "$addr" ] && break
    if ! kill -0 "$campaign_pid" 2>/dev/null; then
        echo "http-smoke: campaign exited before announcing its endpoint" >&2
        cat "$tmp/stderr" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "http-smoke: no announce line within 10s" >&2
    cat "$tmp/stderr" >&2
    exit 1
fi
echo "http-smoke: scraping http://$addr"

# Mid-run scrapes. promcheck retries cover the race between the announce
# and the listener accepting.
"$tmp/promcheck" -retry 20 -interval 100ms -expect-body ok "http://$addr/healthz"
"$tmp/promcheck" -retry 5 -interval 100ms "http://$addr/metrics"

# The fleet view must be served and carry its schema marker.
status=$(curl -fsS --max-time 5 "http://$addr/campaign/status" 2>/dev/null) || {
    echo "http-smoke: GET /campaign/status failed" >&2
    exit 1
}
case "$status" in
*campaign-status-v1*) ;;
*)
    echo "http-smoke: /campaign/status missing schema marker:" >&2
    echo "$status" >&2
    exit 1
    ;;
esac

# The fleet itself must finish cleanly with the scrapers attached.
if ! wait "$campaign_pid"; then
    echo "http-smoke: campaign exited nonzero" >&2
    cat "$tmp/stderr" >&2
    exit 1
fi
campaign_pid=""

# Phase 2: the sweep coordinator's merged fleet exposition. Local workers
# heartbeat every TTL/3, piggybacking cumulative metric snapshots the
# coordinator federates into the sweep_fleet_* counters — those families
# must appear on /metrics mid-sweep and the exposition must still validate.
cat >"$tmp/sweep-spec.json" <<'SPEC'
{
  "name": "http-smoke",
  "impairments": ["weak-link", "mobility"],
  "device_classes": ["pc", "mobile"],
  "ap_densities": ["typical", "sparse"],
  "seeds": { "start": 1, "count": 100 },
  "duration_s": 120
}
SPEC
: >"$tmp/sweep.err"
"$tmp/campaign" sweep -local 2 -batch 8 -ttl 1s -quiet \
    -cache "$tmp/sweep-cache" -http 127.0.0.1:0 \
    "$tmp/sweep-spec.json" >"$tmp/sweep.out" 2>"$tmp/sweep.err" &
sweep_pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's#^obsflag: live endpoints on http://\([^ ]*\).*#\1#p' "$tmp/sweep.err")
    [ -n "$addr" ] && break
    if ! kill -0 "$sweep_pid" 2>/dev/null; then
        echo "http-smoke: sweep exited before announcing its endpoint" >&2
        cat "$tmp/sweep.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "http-smoke: no sweep announce line within 10s" >&2
    cat "$tmp/sweep.err" >&2
    exit 1
fi
echo "http-smoke: scraping sweep coordinator on http://$addr"

"$tmp/promcheck" -retry 20 -interval 100ms "http://$addr/metrics"
curl -fsS --max-time 5 "http://$addr/metrics" >"$tmp/sweep-metrics.txt" || {
    echo "http-smoke: GET sweep /metrics failed" >&2
    exit 1
}
for name in sweep_leases_granted sweep_heartbeats sweep_fleet_jobs_executed \
    sweep_fleet_jobs_cached sweep_fleet_jobs_failed sweep_workers; do
    grep -q "^$name" "$tmp/sweep-metrics.txt" || {
        echo "http-smoke: mid-sweep /metrics missing $name" >&2
        cat "$tmp/sweep-metrics.txt" >&2
        exit 1
    }
done
echo "http-smoke: fleet federation counters exposed mid-sweep"

if ! wait "$sweep_pid"; then
    echo "http-smoke: sweep exited nonzero" >&2
    cat "$tmp/sweep.err" >&2
    exit 1
fi
sweep_pid=""
echo "http-smoke: ok"
