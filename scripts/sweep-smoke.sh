#!/bin/sh
# sweep-smoke.sh — end-to-end check of the fleet sweep engine: a coordinator
# serving a sweep over its HTTP control plane, two separate worker processes
# pulling job leases, one of them killed mid-sweep, and the merged summary
# required to be fingerprint-identical to a cache-cold single-process run.
# That equality is the engine's determinism contract (docs/FLEET.md): worker
# topology, lease re-assignment, and worker death must never change the
# result. The sharded summary must also re-render the full paper artifact
# offline (`campaign sweep report`), proving the v2 multi-metric sketches
# themselves — not just their fingerprint — survived the worker kill. The
# fleet observability plane rides along: the coordinator's fleet-trace-v1
# narration must lint clean (`tracetool fleet`), reconstruct the kill as
# exactly one expire→re-lease episode, and leave a postmortem flight dump
# for the dead worker (docs/OBSERVABILITY.md). CI runs this on every push,
# next to http-smoke.sh.
#
# The coordinator binds 127.0.0.1:0 and announces the picked port on stderr
# ("obsflag: live endpoints on http://ADDR ..."), the same contract
# http-smoke.sh exercises.
#
# POSIX sh; depends only on the Go toolchain.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
coord_pid=""
wa_pid=""
wb_pid=""
cleanup() {
    for pid in "$coord_pid" "$wa_pid" "$wb_pid"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/campaign" ./cmd/campaign
go build -o "$tmp/tracetool" ./cmd/tracetool

# A real-simulator grid: 2 impairments x 2 devices x 2 densities x 100
# seeds = 800 full-length calls — a few seconds of work, enough that
# killing a worker lands mid-sweep. -batch 8 keeps leases small so the dead
# worker's loss is visible; -ttl 2s re-leases it quickly.
cat >"$tmp/spec.json" <<'SPEC'
{
  "name": "smoke",
  "impairments": ["weak-link", "mobility"],
  "device_classes": ["pc", "mobile"],
  "ap_densities": ["typical", "sparse"],
  "seeds": { "start": 1, "count": 100 },
  "duration_s": 120
}
SPEC

# The lazy expansion must be instant and agree on the job count.
"$tmp/campaign" sweep expand "$tmp/spec.json" | tee "$tmp/expand.txt"
grep -q "= 800 jobs" "$tmp/expand.txt" || {
    echo "sweep-smoke: expand reported the wrong job count" >&2
    exit 1
}

# Coordinator: serve-only (-local 0), remote workers do all the work. The
# fleet observability plane is armed: -trace narrates the lease lifecycle
# as fleet-trace-v1 and -flight keeps the postmortem ring that must dump
# when the killed worker's lease expires. Pre-create the stderr file so
# the announce poll never races the background launch into a sed failure
# under set -e.
: >"$tmp/coord.err"
"$tmp/campaign" sweep -local 0 -http 127.0.0.1:0 -batch 8 -ttl 2s \
    -cache "$tmp/cache-sharded" -summary "$tmp/sharded.json" \
    -trace "$tmp/coord-trace.jsonl" -flight "$tmp/flight" \
    "$tmp/spec.json" >"$tmp/coord.out" 2>"$tmp/coord.err" &
coord_pid=$!

# Wait for the control-plane announce line and extract the bound address.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's#^obsflag: live endpoints on http://\([^ ]*\).*#\1#p' "$tmp/coord.err")
    [ -n "$addr" ] && break
    if ! kill -0 "$coord_pid" 2>/dev/null; then
        echo "sweep-smoke: coordinator exited before announcing its endpoint" >&2
        cat "$tmp/coord.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "sweep-smoke: no announce line within 10s" >&2
    cat "$tmp/coord.err" >&2
    exit 1
fi
echo "sweep-smoke: coordinator on http://$addr"

# Two worker processes share the sweep. Worker A is the victim: single
# lease at a time, killed shortly after it starts pulling work.
"$tmp/campaign" worker -connect "$addr" -name victim -parallel 1 \
    -cache "$tmp/cache-sharded" >"$tmp/wa.out" 2>&1 &
wa_pid=$!
"$tmp/campaign" worker -connect "$addr" -name survivor -parallel 2 \
    -cache "$tmp/cache-sharded" >"$tmp/wb.out" 2>&1 &
wb_pid=$!

sleep 0.7
if kill -0 "$wa_pid" 2>/dev/null; then
    kill -9 "$wa_pid" 2>/dev/null || true
    echo "sweep-smoke: killed worker 'victim' mid-sweep"
fi
wa_pid=""

# The survivor finishes the sweep (re-leased spans included), then the
# coordinator prints the merged Table-1-style summary and exits.
if ! wait "$wb_pid"; then
    echo "sweep-smoke: surviving worker exited nonzero" >&2
    cat "$tmp/wb.out" >&2
    exit 1
fi
wb_pid=""
if ! wait "$coord_pid"; then
    echo "sweep-smoke: coordinator exited nonzero" >&2
    cat "$tmp/coord.err" >&2
    exit 1
fi
coord_pid=""

echo "sweep-smoke: merged summary from the sharded run:"
cat "$tmp/coord.out"
grep -q "Fleet sweep" "$tmp/coord.out" || {
    echo "sweep-smoke: no Table-1-style summary in coordinator output" >&2
    exit 1
}

# Reference run: single process, separate cold cache, same spec.
"$tmp/campaign" sweep -quiet -cache "$tmp/cache-single" \
    -summary "$tmp/single.json" "$tmp/spec.json" >/dev/null

# The determinism gate: identical fingerprints, sharded vs single-process.
fp_sharded=$(sed -n 's/.*"fingerprint": "\([0-9a-f]*\)".*/\1/p' "$tmp/sharded.json" | head -n 1)
fp_single=$(sed -n 's/.*"fingerprint": "\([0-9a-f]*\)".*/\1/p' "$tmp/single.json" | head -n 1)
if [ -z "$fp_sharded" ] || [ -z "$fp_single" ]; then
    echo "sweep-smoke: missing fingerprint in summary JSON" >&2
    exit 1
fi
if [ "$fp_sharded" != "$fp_single" ]; then
    echo "sweep-smoke: FINGERPRINT MISMATCH: sharded $fp_sharded vs single $fp_single" >&2
    exit 1
fi
echo "sweep-smoke: fingerprints match ($fp_sharded)"

# Both summaries must speak the v2 multi-metric schema.
for f in sharded.json single.json; do
    grep -q '"schema": "sweep-summary-v2"' "$tmp/$f" || {
        echo "sweep-smoke: $f is not a sweep-summary-v2 document" >&2
        exit 1
    }
done

# The paper artifact must re-render offline from the kill-survivor's
# summary: every table and both CDF figures, from merged sketches only.
"$tmp/campaign" sweep report "$tmp/sharded.json" >"$tmp/report.txt"
for want in "Paper artifact" "Table 1" "Table 2" "Table 3" \
    "MOS quantiles" "MOS CDF" "fingerprint $fp_sharded"; do
    grep -q "$want" "$tmp/report.txt" || {
        echo "sweep-smoke: sharded report missing '$want'" >&2
        cat "$tmp/report.txt" >&2
        exit 1
    }
done
echo "sweep-smoke: paper artifact re-rendered from the sharded summary"

# The fleet plane must have reconstructed the worker kill: the coordinator's
# fleet-trace-v1 narration lints clean, and the victim's death shows up as
# exactly one expire→re-lease episode (its single outstanding lease, reaped
# at TTL and re-granted whole to the survivor).
"$tmp/tracetool" fleet "$tmp/coord-trace.jsonl" >"$tmp/fleet.txt" || {
    echo "sweep-smoke: fleet trace failed the lint" >&2
    cat "$tmp/fleet.txt" >&2
    exit 1
}
grep -q "fleet lint: clean" "$tmp/fleet.txt" || {
    echo "sweep-smoke: fleet report is not clean" >&2
    cat "$tmp/fleet.txt" >&2
    exit 1
}
grep -q "expire->re-lease episodes: 1" "$tmp/fleet.txt" || {
    echo "sweep-smoke: expected exactly one expire->re-lease episode" >&2
    cat "$tmp/fleet.txt" >&2
    exit 1
}
echo "sweep-smoke: fleet trace lints clean with one expire->re-lease episode"

# A SIGKILL'd worker cannot write its own postmortem, so the coordinator
# must have dumped its flight ring when the victim's lease expired.
set -- "$tmp"/flight/flight-expire-victim-*.jsonl
if [ ! -s "$1" ]; then
    echo "sweep-smoke: no postmortem flight dump for the killed worker" >&2
    ls "$tmp/flight" >&2 2>/dev/null || true
    exit 1
fi
echo "sweep-smoke: postmortem flight dump present ($(basename "$1"))"
echo "sweep-smoke: ok"
