#!/bin/sh
# bench.sh — run the simulator benchmark suite and write BENCH_<date>.json
# (see docs/PERFORMANCE.md for how to read the file).
#
# Usage:
#   scripts/bench.sh           full run: 2s per benchmark, writes BENCH_<date>.json
#   scripts/bench.sh smoke     CI regression smoke: enforce the scheduling
#                              alloc ceilings and run every benchmark once
#   scripts/bench.sh diff      quick scheduler run, compared against the newest
#                              checked-in BENCH_*.json with `benchjson diff`;
#                              exits nonzero on a ns/op regression beyond
#                              BENCH_DIFF_THRESHOLD (default 0.5 — CI machines
#                              are noisy, so the gate is advisory there)
#
# BENCH_DATE overrides the date stamp (useful for reproducible artifacts).
# POSIX sh; depends only on the Go toolchain.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "diff" ]; then
    baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)
    if [ -z "$baseline" ]; then
        echo "bench.sh diff: no BENCH_*.json baseline checked in" >&2
        exit 2
    fi
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    # Short scheduler-only pass: the micro-benchmarks settle fast enough for
    # a trend signal; the end-to-end benchmarks need the full 2s run.
    go test -bench . -benchmem -benchtime 0.3s -run '^$' \
        ./internal/sim ./internal/sim/rng >"$tmp/sim.txt"
    go run ./cmd/benchjson -date "$(date +%F)" -o "$tmp/current.json" sim="$tmp/sim.txt"
    go run ./cmd/benchjson diff -threshold "${BENCH_DIFF_THRESHOLD:-0.5}" \
        "$baseline" "$tmp/current.json"
    exit $?
fi

if [ "${1:-}" = "smoke" ]; then
    # The alloc-ceiling test is the hard regression gate: scheduling hot
    # paths promise zero steady-state allocations, and this fails the build
    # if any of them starts allocating again. The 1x bench pass then checks
    # every benchmark in the repo still compiles and runs.
    go test ./internal/sim -run TestSchedulingAllocCeiling -count=1
    go test -bench . -benchtime=1x -benchmem -run '^$' ./...
    exit 0
fi

date=${BENCH_DATE:-$(date +%F)}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Scheduler + RNG micro-benchmarks (the perf contract for internal/sim).
go test -bench . -benchmem -benchtime 2s -run '^$' \
    ./internal/sim ./internal/sim/rng >"$tmp/sim.txt"
# End-to-end experiment benchmarks (whole-call and figure-scale runs).
go test -bench 'Table1|Figure2a|FullDualCall|FullDiversiFiCall' \
    -benchmem -benchtime 2s -run '^$' . >"$tmp/e2e.txt"

go run ./cmd/benchjson -date "$date" -o "BENCH_$date.json" \
    sim="$tmp/sim.txt" e2e="$tmp/e2e.txt"
echo "wrote BENCH_$date.json"
