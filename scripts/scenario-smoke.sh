#!/bin/sh
# scenario-smoke.sh — end-to-end check of the declarative scenario engine
# (internal/scenario, docs/SCENARIOS.md): validate every committed example
# spec, generate the full 100-scenario office corpus and check it comes out
# whole and deterministic, and run one generated scenario through the real
# simulator under all three strategies. CI runs this on every push, next to
# sweep-smoke.sh.
#
# POSIX sh; depends only on the Go toolchain.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT INT TERM

go build -o "$tmp/experiments" ./cmd/experiments

# Every committed example spec must validate: the spine specs are pinned to
# the golden suite by the spec-equivalence tests, so a validation failure
# here means the examples drifted from the engine.
"$tmp/experiments" scenario validate examples/scenarios/*.yaml | tee "$tmp/validate.txt"
n_specs=$(ls examples/scenarios/*.yaml | wc -l)
n_ok=$(grep -c '^ok ' "$tmp/validate.txt")
if [ "$n_ok" != "$n_specs" ]; then
    echo "scenario-smoke: validated $n_ok of $n_specs example specs" >&2
    exit 1
fi

# Generate the full corpus twice: 100 JSONL records each, byte-identical —
# the generator is a pure function of (spec hash, seed, index).
"$tmp/experiments" scenario gen examples/scenarios/corpus-office.yaml >"$tmp/corpus-a.jsonl"
"$tmp/experiments" scenario gen examples/scenarios/corpus-office.yaml >"$tmp/corpus-b.jsonl"
n_gen=$(wc -l <"$tmp/corpus-a.jsonl")
if [ "$n_gen" -ne 100 ]; then
    echo "scenario-smoke: corpus generated $n_gen scenarios, want 100" >&2
    exit 1
fi
if ! cmp -s "$tmp/corpus-a.jsonl" "$tmp/corpus-b.jsonl"; then
    echo "scenario-smoke: corpus generation is not deterministic" >&2
    exit 1
fi
echo "scenario-smoke: 100-scenario corpus generated deterministically"

# The per-file form must produce one JSON document per scenario.
"$tmp/experiments" scenario gen examples/scenarios/corpus-office.yaml \
    -out "$tmp/corpus" >/dev/null
n_files=$(ls "$tmp/corpus" | wc -l)
if [ "$n_files" -ne 100 ]; then
    echo "scenario-smoke: -out wrote $n_files files, want 100" >&2
    exit 1
fi

# One generated scenario end to end on the real simulator: all three
# strategies must be assessed.
"$tmp/experiments" scenario run examples/scenarios/corpus-office.yaml -i 3 \
    | tee "$tmp/run.txt"
for want in stronger cross diversifi MOS=; do
    grep -q "$want" "$tmp/run.txt" || {
        echo "scenario-smoke: run output missing '$want'" >&2
        exit 1
    }
done
echo "scenario-smoke: ok"
