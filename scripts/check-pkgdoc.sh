#!/bin/sh
# check-pkgdoc.sh — fail if any package under internal/ or cmd/ lacks a
# package doc comment: "// Package <name> ..." for libraries, the godoc
# "// Command <name> ..." convention for main packages under cmd/. Run from
# the repo root; CI runs it on every push. POSIX sh, nothing beyond grep.
set -eu

fail=0
for dir in internal/*/ cmd/*/; do
    [ -d "$dir" ] || continue
    # A directory with no Go files (or only testdata) is not a package.
    ls "$dir"*.go >/dev/null 2>&1 || continue
    pkg=$(basename "$dir")
    case "$dir" in
    cmd/*) want="// Command $pkg " ;;
    *)     want="// Package $pkg " ;;
    esac
    if ! grep -l "^$want" "$dir"*.go >/dev/null 2>&1; then
        echo "missing package doc comment: $dir (want '$want...')" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "every package must carry a godoc comment; see docs/ARCHITECTURE.md" >&2
    exit 1
fi
echo "pkgdoc: all packages documented"
