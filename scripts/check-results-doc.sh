#!/bin/sh
# check-results-doc.sh — keep docs/RESULTS.md honest. The document promises
# that every number in it regenerates with the commands it cites; this
# script verifies the promise stays true as the repo evolves:
#
#   1. every sweep spec cited in the document exists and still parses
#      (`campaign sweep expand -n 1` on each — lazy, so instant even for
#      the million-job metro spec);
#   2. the quick spec actually regenerates the committed artifact: the
#      deterministic fingerprint printed by a fresh cache-cold run must be
#      the one quoted in the document.
#
# POSIX sh; depends only on the Go toolchain. CI runs this next to
# sweep-smoke.sh.
set -eu
cd "$(dirname "$0")/.."

doc=docs/RESULTS.md
[ -f "$doc" ] || {
    echo "check-results-doc: $doc missing" >&2
    exit 1
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM
go build -o "$tmp/campaign" ./cmd/campaign

# Every cited spec must exist and expand. The doc cites specs by their
# repo-relative examples/sweeps/ path; a renamed or deleted spec fails here.
specs=$(grep -o 'examples/sweeps/[a-z0-9-]*\.json' "$doc" | sort -u)
[ -n "$specs" ] || {
    echo "check-results-doc: $doc cites no sweep specs" >&2
    exit 1
}
for spec in $specs; do
    [ -f "$spec" ] || {
        echo "check-results-doc: $doc cites missing spec $spec" >&2
        exit 1
    }
    "$tmp/campaign" sweep expand -n 1 "$spec" >"$tmp/expand.txt" || {
        echo "check-results-doc: cited spec $spec no longer parses" >&2
        exit 1
    }
    echo "check-results-doc: $spec expands ($(head -n 1 "$tmp/expand.txt"))"
done

# The quick artifact must reproduce: same fingerprint as the document
# quotes. A deliberate change to the simulator or the metric set is fine —
# regenerate the document and update the quoted fingerprint with it.
cited=$(grep -o 'fingerprint `[0-9a-f]*`' "$doc" | head -n 1 | grep -o '[0-9a-f]\{32\}')
[ -n "$cited" ] || {
    echo "check-results-doc: $doc quotes no artifact fingerprint" >&2
    exit 1
}
"$tmp/campaign" sweep -quiet -no-cache examples/sweeps/paper-quick.json \
    >"$tmp/quick.txt" 2>/dev/null
fresh=$(grep -o 'fingerprint [0-9a-f]\{32\}' "$tmp/quick.txt" | head -n 1 | cut -d' ' -f2)
if [ "$fresh" != "$cited" ]; then
    echo "check-results-doc: docs/RESULTS.md is stale: cites fingerprint $cited," >&2
    echo "  but a fresh run of examples/sweeps/paper-quick.json produces $fresh." >&2
    echo "  Regenerate the document (see its 'Regenerating' section) and update" >&2
    echo "  the quoted fingerprint." >&2
    exit 1
fi
echo "check-results-doc: artifact fingerprint reproduces ($fresh)"
echo "check-results-doc: ok"
