// voipcall walks through the impairments the paper's measurement study
// found in the wild — weak links, client mobility, a running microwave
// oven, and channel congestion — and shows how single-link VoIP and
// DiversiFi fare under each (the §4.4 story).
package main

import (
	"fmt"
	"repro/internal/sim/rng"

	"repro/internal/core"
	"repro/internal/traffic"
	"repro/internal/voip"
)

const callsPerImpairment = 12

func main() {
	fmt.Println("VoIP under WiFi impairments: single link vs DiversiFi")
	fmt.Printf("(%d simulated 2-minute calls per row)\n\n", callsPerImpairment)
	fmt.Printf("%-12s %14s %14s %16s\n", "impairment", "single PCR", "DiversiFi PCR", "mean waste")

	for _, imp := range core.AllImpairments {
		rng := rng.New(int64(imp) + 99)
		var single, diversifi []voip.Quality
		var waste float64
		for i := 0; i < callsPerImpairment; i++ {
			sc := core.RandomScenario(rng, imp, traffic.G711, int64(imp)*1000+int64(i))
			single = append(single, voip.Assess(core.RunDualCall(sc).Stronger(), traffic.G711))
			r := core.RunDiversiFi(sc, core.DiversiFiOptions{Mode: core.ModeCustomAP})
			diversifi = append(diversifi, voip.Assess(r.Trace, traffic.G711))
			waste += r.WastefulRate
		}
		fmt.Printf("%-12s %13.0f%% %13.0f%% %15.2f%%\n",
			imp.String(),
			100*voip.PCR(single),
			100*voip.PCR(diversifi),
			100*waste/callsPerImpairment)
	}

	fmt.Println()
	fmt.Println("Microwave ovens blanket every 2.4 GHz link at once, so even")
	fmt.Println("cross-link diversity struggles there (§4.4); everywhere else,")
	fmt.Println("the secondary link rescues nearly every lost packet.")
}
