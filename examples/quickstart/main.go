// Quickstart: simulate one VoIP call over a flaky WiFi link, first with
// plain single-link reception and then with DiversiFi's single-NIC
// cross-link recovery, and compare what the listener would have heard.
package main

import (
	"fmt"
	"repro/internal/sim/rng"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/voip"
)

func main() {
	// A randomly placed client in the paper's 30 m × 15 m office with a
	// weak-link impairment: both APs reachable, neither great.
	rng := rng.New(2016)
	scenario := core.RandomScenario(rng, core.ImpWeakLink, traffic.G711, 2016)

	// Baseline: associate with the stronger AP and hope for the best.
	dual := core.RunDualCall(scenario)
	baseline := voip.Assess(dual.Stronger(), traffic.G711)

	// DiversiFi: same client, same radio environment, but the secondary
	// AP keeps a 5-deep head-drop buffer and the client fetches exactly
	// the packets the primary lost (Algorithm 1).
	result := core.RunDiversiFi(scenario, core.DiversiFiOptions{Mode: core.ModeCustomAP})
	diversifi := voip.Assess(result.Trace, traffic.G711)

	deadline := traffic.G711.Deadline
	fmt.Println("DiversiFi quickstart — one 2-minute G.711 call, weak links")
	fmt.Println()
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "DiversiFi")
	row := func(label string, b, d string) { fmt.Printf("%-22s %12s %12s\n", label, b, d) }
	row("loss rate",
		fmt.Sprintf("%.2f%%", 100*stats.LossRate(dual.Stronger().LostWithDeadline(deadline))),
		fmt.Sprintf("%.2f%%", 100*stats.LossRate(result.Trace.LostWithDeadline(deadline))))
	row("worst 5s loss",
		fmt.Sprintf("%.1f%%", 100*baseline.WorstWindowLoss),
		fmt.Sprintf("%.1f%%", 100*diversifi.WorstWindowLoss))
	row("MOS", fmt.Sprintf("%.2f", baseline.MOS), fmt.Sprintf("%.2f", diversifi.MOS))
	row("poor call?", yesNo(baseline.Poor), yesNo(diversifi.Poor))
	fmt.Println()
	fmt.Printf("DiversiFi recovered %d of %d detected losses via the secondary AP,\n",
		result.Client.Recovered, result.Client.LossesDetected)
	fmt.Printf("switching links %d times and wasting only %.2f%% of transmissions.\n",
		result.Client.RecoverySwitches, 100*result.WastefulRate)
	fmt.Printf("Mean recovery delay: %s.\n", meanDelay(result.RecoveryDelays))
}

func yesNo(b bool) string {
	if b {
		return "YES"
	}
	return "no"
}

func meanDelay(ds []sim.Duration) string {
	if len(ds) == 0 {
		return "n/a"
	}
	var sum sim.Duration
	for _, d := range ds {
		sum += d
	}
	return fmt.Sprintf("%.1f ms", float64(sum)/float64(len(ds))/1000)
}
