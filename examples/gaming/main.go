// gaming runs the paper's high-bandwidth experiment (§4.5): a 5 Mbps
// interactive stream — cloud-gaming class traffic, 1000-byte packets every
// 1.6 ms — comparing stronger-link selection against cross-link
// replication and single-NIC DiversiFi.
package main

import (
	"fmt"
	"repro/internal/sim/rng"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

const runs = 10

func main() {
	fmt.Println("5 Mbps interactive stream (cloud gaming) over flaky WiFi")
	fmt.Printf("(%d simulated 30-second sessions, weak-link conditions)\n\n", runs)

	rng := rng.New(42)
	deadline := 150 * sim.Millisecond
	var strongWorst, crossWorst, divWorst []float64
	for i := 0; i < runs; i++ {
		sc := core.RandomScenario(rng, core.ImpWeakLink, traffic.HighRate, int64(3000+i)).
			WithDuration(30 * sim.Second)
		d := core.RunDualCall(sc)
		worst := func(tr interface {
			LostWithDeadline(sim.Duration) []bool
			WindowPackets(sim.Duration) int
		}) float64 {
			lost := tr.LostWithDeadline(deadline)
			return 100 * stats.WorstWindowRate(lost, tr.WindowPackets(5*sim.Second))
		}
		strongWorst = append(strongWorst, worst(d.Stronger()))
		crossWorst = append(crossWorst, worst(d.CrossLink()))

		r := core.RunDiversiFi(sc, core.DiversiFiOptions{Mode: core.ModeCustomAP})
		divWorst = append(divWorst, worst(r.Trace))
	}

	fmt.Printf("%-28s %8s %8s %8s\n", "worst-5s loss percentage", "p50", "p90", "max")
	row := func(name string, xs []float64) {
		fmt.Printf("%-28s %7.1f%% %7.1f%% %7.1f%%\n", name,
			stats.Percentile(xs, 50), stats.Percentile(xs, 90), stats.Percentile(xs, 100))
	}
	row("stronger-link selection", strongWorst)
	row("cross-link replication", crossWorst)
	row("DiversiFi (single NIC)", divWorst)
	fmt.Println()
	fmt.Println("Replication pays off for high-rate streams too — and DiversiFi")
	fmt.Println("gets most of that benefit without a second radio or 2x airtime.")
}
