// livemiddlebox runs the whole DiversiFi middlebox deployment over real
// UDP sockets on loopback: a G.711-like sender feeds an SDN-style
// replicator, one copy crosses a lossy emulated WiFi link to the client,
// the other lands in the middlebox's head-drop buffer; the client detects
// sequence gaps and retrieves exactly the missing packets through the
// start/stop control protocol (§5.3.2). No simulation — every packet here
// is a real datagram.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/emu"
)

func main() {
	const (
		stream   = 1
		count    = 400
		interval = 10 * time.Millisecond // 2x real-time to keep the demo short
	)

	// Middlebox with a deep-enough buffer for the recovery budget.
	mb, err := emu.NewMiddlebox("127.0.0.1:0", "127.0.0.1:0", emu.MiddleboxConfig{BufferDepth: 16})
	check(err)
	defer mb.Close()

	// The DiversiFi client: plain UDP receiver + gap detection + recovery.
	client, err := emu.NewClient("127.0.0.1:0", emu.ClientConfig{
		Stream:        stream,
		Interval:      interval,
		PLT:           2 * interval,
		Deadline:      12 * interval,
		MiddleboxCtrl: mb.CtrlAddr(),
		Expected:      count,
	})
	check(err)
	defer client.Close()

	// The primary "WiFi" path: 8% random loss plus occasional bursts.
	primary, err := emu.NewLink("127.0.0.1:0", client.Addr(), emu.LinkConfig{
		Loss:       0.05,
		BurstEnter: 0.01, BurstExit: 0.2, BurstLoss: 0.8,
		Delay: 2 * time.Millisecond, Jitter: time.Millisecond,
		Seed: 7,
	})
	check(err)
	defer primary.Close()

	// The SDN switch: every stream packet goes to both paths.
	rep, err := emu.NewReplicator("127.0.0.1:0", primary.Addr(), mb.DataAddr())
	check(err)
	defer rep.Close()

	fmt.Println("live DiversiFi over loopback UDP")
	fmt.Printf("  sender → replicator %s\n", rep.Addr())
	fmt.Printf("  primary link %s (lossy) → client %s\n", primary.Addr(), client.Addr())
	fmt.Printf("  middlebox data %s, control %s\n\n", mb.DataAddr(), mb.CtrlAddr())

	sender, err := emu.NewSender(rep.Addr(), emu.SenderConfig{
		Stream: stream, PayloadSize: 160, Interval: interval, Count: count,
	})
	check(err)
	defer sender.Close()

	<-sender.Done()
	time.Sleep(300 * time.Millisecond) // let the last recoveries land

	linkStats := primary.Stats()
	st := client.Stats()
	fmt.Printf("sender emitted:        %d packets\n", sender.Sent())
	fmt.Printf("primary link dropped:  %d (%.1f%%)\n",
		linkStats.Dropped, 100*float64(linkStats.Dropped)/float64(linkStats.Received))
	fmt.Printf("client received:       %d unique (+%d duplicates)\n", st.UniqueTotal, st.Duplicates)
	fmt.Printf("recovered via mbox:    %d\n", st.Recovered)
	fmt.Printf("residual loss:         %.2f%%\n", 100*client.LossRate())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "livemiddlebox:", err)
		os.Exit(1)
	}
}
