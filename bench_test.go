// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (run `go test -bench=. -benchmem`); each
// BenchmarkTableN / BenchmarkFigureN target executes the corresponding
// experiment end-to-end on a reduced corpus and reports the headline
// numbers via b.ReportMetric, so a bench run doubles as a quick
// reproduction check. Full-size corpora are available through
// cmd/experiments.
package repro

import (
	"repro/internal/sim/rng"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// benchN is the corpus size used by corpus-driven benches: large enough
// for stable shapes, small enough to keep a full -bench=. run fast.
const benchN = 24

const benchSeed = 42

// --- §3: Tables 1 & 2, Figure 1 -------------------------------------------

func BenchmarkTable1_VoIPServicePCR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Table1(benchSeed)
		if len(r.Tables[0].Rows) != 4 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkTable2_NetTestPCR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Table2(benchSeed)
		if len(r.Tables) != 2 {
			b.Fatal("table 2 incomplete")
		}
	}
}

func BenchmarkFigure1_BSSIDSurvey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Figure1(benchSeed)
		if len(r.Tables) != 2 {
			b.Fatal("figure 1 incomplete")
		}
	}
}

// --- §4: Figures 2–6 -------------------------------------------------------

func BenchmarkFigure2a_SelectionVsCrossLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure2a(benchN, benchSeed)
	}
}

func BenchmarkFigure2b_Divert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure2b(benchN, benchSeed)
	}
}

func BenchmarkFigure2c_Temporal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure2c(benchN, benchSeed)
	}
}

func BenchmarkFigure2d_MIMO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure2d(benchN, benchSeed)
	}
}

func BenchmarkFigure2e_HighRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure2e(8, benchSeed) // 5 Mbps calls are 12.5x the packets
	}
}

func BenchmarkFigure3_WeakLinkTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure3(benchSeed)
	}
}

func BenchmarkFigure4_Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure4(benchN, benchSeed)
	}
}

func BenchmarkFigure5_BurstLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure5(benchN, benchSeed)
	}
}

func BenchmarkFigure6_PCRByImpairment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure6(8, benchSeed)
	}
}

// --- §6: Figures 8–10, Table 3, scaling, overhead --------------------------

func BenchmarkFigure8_DiversiFiLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure8(benchN, benchSeed)
	}
}

func BenchmarkFigure9_DiversiFiBursts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure9(benchN, benchSeed)
	}
}

func BenchmarkFigure10_TCPCoexistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure10(12, benchSeed)
	}
}

func BenchmarkTable3_RecoveryDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Table3(benchSeed)
		if len(r.Tables[0].Rows) != 2 {
			b.Fatal("table 3 incomplete")
		}
	}
}

func BenchmarkMiddleboxScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.MiddleboxScaling(benchSeed)
	}
}

func BenchmarkDuplicationOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Overhead(benchN, benchSeed)
	}
}

// --- Ablations (design choices of §5) ---------------------------------------

func BenchmarkAblationQueuePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationQueuePolicy(10, benchSeed)
	}
}

func BenchmarkAblationQueueSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationQueueSize(8, benchSeed)
	}
}

func BenchmarkAblationSwitchTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationSwitchTiming(8, benchSeed)
	}
}

func BenchmarkAblationKeepalive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationKeepalive(8, benchSeed)
	}
}

func BenchmarkAblationPLT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationPLT(8, benchSeed)
	}
}

func BenchmarkAblationPlayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationPlayout(8, benchSeed)
	}
}

func BenchmarkAblationHWBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationHWBatch(8, benchSeed)
	}
}

func BenchmarkAblationBackoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationBackoff(8, benchSeed)
	}
}

func BenchmarkExtensionUplink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Uplink(8, benchSeed)
	}
}

func BenchmarkExtensionFEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.FECComparison(10, benchSeed)
	}
}

func BenchmarkExtensionLinkCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.DiversityVsLinks(10, benchSeed)
	}
}

func BenchmarkExtensionEDCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.EDCA(8, benchSeed)
	}
}

func BenchmarkExtensionHandoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Handoff(10, benchSeed)
	}
}

// --- Micro-benchmarks of the substrates -------------------------------------

func BenchmarkSimEventThroughput(b *testing.B) {
	s := sim.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(sim.Microsecond, func() {})
		if i%1024 == 1023 {
			s.RunAll()
		}
	}
	s.RunAll()
}

func BenchmarkMACTransmit(b *testing.B) {
	s := sim.New(2)
	link := phy.NewLink(s.RNG("l"), phy.NewEnvironment(), phy.LinkParams{
		APPos: phy.Position{X: 0, Y: 0}, Chan: phy.Chan1,
		Client:   phy.Static{Pos: phy.Position{X: 8, Y: 0}},
		ShadowDB: 5, ShadowT: 4 * sim.Second,
		FadeGood: 10 * sim.Second, FadeBad: 300 * sim.Millisecond,
	})
	tx := mac.NewTransmitter(link, rng.New(2))
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := tx.Transmit(now, 160)
		now = out.At.Add(20 * sim.Millisecond)
	}
}

func BenchmarkGilbertElliott(b *testing.B) {
	g := phy.NewGilbertElliott(rng.New(3), sim.Second, 200*sim.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Bad(sim.Time(i) * sim.Time(20*sim.Millisecond))
	}
}

func BenchmarkFullDualCall(b *testing.B) {
	rng := rng.New(4)
	sc := core.RandomScenario(rng, core.ImpWeakLink, traffic.G711, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.RunDualCall(sc)
		if d.TraceA.Len() != 6000 {
			b.Fatal("short call")
		}
	}
}

func BenchmarkFullDiversiFiCall(b *testing.B) {
	rng := rng.New(5)
	sc := core.RandomScenario(rng, core.ImpWeakLink, traffic.G711, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunDiversiFi(sc, core.DiversiFiOptions{Mode: core.ModeCustomAP})
	}
}

func BenchmarkTraceMerge(b *testing.B) {
	mk := func(seed int64) *trace.Trace {
		tr := trace.New(6000, 20*sim.Millisecond)
		rng := rng.New(seed)
		for i := 0; i < 6000; i++ {
			at := sim.Time(i) * sim.Time(20*sim.Millisecond)
			tr.RecordSent(i, at)
			if rng.Float64() > 0.02 {
				tr.RecordArrival(i, at.Add(5*sim.Millisecond))
			}
		}
		return tr
	}
	a, c := mk(1), mk(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Merge(a, c)
	}
}

func BenchmarkWorstWindow(b *testing.B) {
	lost := make([]bool, 6000)
	rng := rng.New(6)
	for i := range lost {
		lost[i] = rng.Float64() < 0.05
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.WorstWindowRate(lost, 250)
	}
}

func BenchmarkCDFPercentiles(b *testing.B) {
	rng := rng.New(7)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := stats.NewCDF(xs)
		c.Percentile(90)
	}
}
